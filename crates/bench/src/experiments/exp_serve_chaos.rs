//! Serving-layer chaos soak (extension) — decision correctness of the
//! `abr-serve` service under deterministic fault injection.
//!
//! Boots a deadline-armed in-process TCP server, then drives a held fleet
//! at it with the loadgen's seeded fault plan switched on: every few frame
//! sends a connection draws a mid-frame stall, a truncated write, or a
//! hard connection reset, and must recover via retry, reconnect, and
//! session resume. Parity checking stays on — each served session is
//! replayed in-process and must compare equal — so the run proves the
//! lifecycle hardening (deadlines, reaper, orphan grace, retransmit
//! dedup) preserves byte-exact decisions, not just liveness.
//!
//! Emits `BENCH_serve_chaos.json` at the repo top level (fault/recovery
//! counters plus service latency measured *through* the chaos) and
//! `results/exp_serve_chaos.csv` with per-scheme rows. Latency is split by
//! whether the decision's own call absorbed an injected fault: the gated
//! `latency_p50_ms`/`latency_p99_ms` cover **clean** decisions only — they
//! measure what chaos on *other* traffic does to a healthy session, which
//! is exactly the head-of-line collapse the reactor backend fixes — while
//! `faulted_latency_p99_ms` tracks the stall/backoff tail separately.
//!
//! The whole run is recorded to `results/serve_chaos.replay` (see
//! docs/REPLAY.md) and **replayed before the bench is accepted**: every
//! recorded decision is re-executed through fresh algorithm instances and
//! must come back bit-identical. A chaos failure is therefore never an
//! anecdote — the artifact that failed ships with the run.

use crate::engine;
use crate::experiments::banner;
use crate::harness::TraceSet;
use crate::journal::{self, Stopwatch};
use crate::results_dir;
use abr_serve::loadgen::{self, FaultConfig, LoadgenConfig};
use abr_serve::replay::{self, Event, Recorder, ReplayPlayer};
use abr_serve::server::threads_from_env;
use abr_serve::store::StoreConfig;
use abr_serve::{Server, ServerConfig};
use abr_sim::metrics::evaluate;
use serde::{Deserialize, Serialize};
use sim_report::stats::percentile;
use sim_report::{CsvWriter, TextTable};
use std::collections::BTreeMap;
use std::io;
use std::sync::Arc;
use std::thread;

/// Sessions the chaos fleet holds concurrently.
pub const CHAOS_SESSIONS: usize = 120;

/// Inject one fault every this many frame sends per connection.
pub const FAULT_PERIOD: u64 = 5;

/// The summary document written to `BENCH_serve_chaos.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosBench {
    /// Sessions driven (all held concurrently).
    pub sessions: usize,
    /// Client connections carrying the fleet.
    pub connections: usize,
    /// Server worker threads.
    pub server_threads: usize,
    /// Total unique decisions the fleet obtained.
    pub decisions: u64,
    /// Decisions whose own call absorbed an injected fault (stall inflates
    /// the call in place; truncation/reset forces a retry).
    pub faulted_decisions: u64,
    /// Fleet wall time in seconds.
    pub wall_time_s: f64,
    /// Decisions served per second of wall time, measured through the
    /// chaos (retries, reconnects, and resumes included).
    pub decisions_per_s: f64,
    /// Faults injected in total (stalls + truncations + resets).
    pub faults_injected: u64,
    /// Mid-frame stalls injected.
    pub stalls: u64,
    /// Truncated writes injected (connection then torn down).
    pub truncated_writes: u64,
    /// Hard connection resets injected.
    pub resets: u64,
    /// Times a client redialed after losing its connection.
    pub reconnects: u64,
    /// Sessions re-adopted via `ResumeSession` after a reconnect.
    pub resumes: u64,
    /// Operations that needed at least one retry.
    pub retries: u64,
    /// Connections the server reaped for blowing a deadline.
    pub connections_reaped: u64,
    /// Server-side count of successful resumes (must equal `resumes`).
    pub sessions_resumed: u64,
    /// Sessions the server lost outright (must be 0: orphan grace covers
    /// every injected disconnect).
    pub sessions_aborted: u64,
    /// Median service latency of **clean** decisions (calls that absorbed
    /// no injected fault), milliseconds. Chaos elsewhere in the fleet must
    /// not leak into these.
    pub latency_p50_ms: f64,
    /// 99th-percentile clean-decision service latency, milliseconds (the
    /// bench gate's chaos-path latency trajectory).
    pub latency_p99_ms: f64,
    /// 99th-percentile service latency of decisions whose own call was
    /// faulted, milliseconds (stall/backoff sleeps land here).
    pub faulted_latency_p99_ms: f64,
    /// Sessions whose decisions were replayed in-process and compared.
    pub parity_checked: usize,
    /// Sessions whose remote decisions diverged from the replay (must
    /// be 0).
    pub parity_mismatches: usize,
    /// Sessions admitted in degraded (stateless RBA) mode (0 here).
    pub degraded_sessions: usize,
    /// Events recorded to `results/serve_chaos.replay` (RunEnd included).
    pub replay_events: u64,
    /// Whether the recorded log replayed to bit-identical decisions (must
    /// be true — the run fails otherwise).
    pub replay_verified: bool,
}

/// Run this experiment (registry entry point).
pub fn run() -> io::Result<()> {
    banner(
        "serve_chaos",
        "abr-serve chaos soak: faults injected, parity must hold",
    );
    let threads = threads_from_env().max(4);
    let connections = threads.min(6);
    let server_config = ServerConfig {
        threads,
        queue_depth: 64,
        // Deadlines armed for real: injected stalls (~20 ms) sit far below
        // the read deadline, so reaps only fire on genuinely wedged peers.
        read_deadline_ms: 3_000,
        write_deadline_ms: 3_000,
        poll_ms: 10,
        store: StoreConfig {
            capacity: CHAOS_SESSIONS.max(StoreConfig::default().capacity),
            idle_ticks: u64::MAX,
            // Every injected disconnect must be resumable.
            orphan_grace_ticks: u64::MAX,
            ..StoreConfig::default()
        },
        ..ServerConfig::default()
    };
    // One shared recorder: server frame/store events and client fault-plan
    // events interleave into a single canonical log under results/.
    let replay_path = results_dir().join("serve_chaos.replay");
    let recorder = Arc::new(Recorder::to_file(&replay_path)?);
    recorder.record(&Event::RunMeta {
        label: "bench serve_chaos".into(),
        seed: 42,
    });
    let bound = Server::bind_recorded(
        "127.0.0.1:0",
        server_config,
        engine::serve_provider(),
        Some(recorder.clone()),
    )?;
    let addr = bound.addr();
    let server = thread::spawn(move || bound.serve());

    let config = LoadgenConfig {
        sessions: CHAOS_SESSIONS,
        connections,
        seed: 42,
        schemes: vec!["cava".into(), "bola".into(), "rba".into()],
        hold: true,
        parity: true,
        faults: Some(FaultConfig {
            seed: 1337,
            period: FAULT_PERIOD,
            stall_ms: 20,
            ..FaultConfig::default()
        }),
        ..LoadgenConfig::default()
    };
    let provider = engine::serve_provider();
    let watch = Stopwatch::start();
    let now = move || watch.seconds();
    eprintln!(
        "soaking {addr} with {CHAOS_SESSIONS} held sessions, one fault per {FAULT_PERIOD} sends..."
    );
    let report = loadgen::run_recorded(addr, &config, &provider, &now, Some(recorder.clone()))
        .map_err(io::Error::other)?;
    loadgen::shutdown_server(addr).map_err(io::Error::other)?;
    let stats = server
        .join()
        .map_err(|_| io::Error::other("server thread panicked"))?;
    let replay_events = recorder.finish().map_err(io::Error::other)?;

    // Replay the artifact before accepting the run: every recorded decision
    // must re-execute to bit-identical bytes through fresh algorithm state.
    let log = replay::read_log(&replay_path).map_err(io::Error::other)?;
    let mut player = ReplayPlayer::new(log, engine::serve_provider());
    player.run_to_end();
    if let Some(divergence) = player.divergences().first() {
        return Err(io::Error::other(format!(
            "chaos replay diverged ({} total): {divergence}",
            player.divergences().len()
        )));
    }
    let summary = player.summary();
    eprintln!(
        "replay verified: {} events, {} decisions re-executed bit-identically",
        summary.events, summary.decisions
    );

    let errors = report.errors();
    if let Some((id, error)) = errors.first() {
        return Err(io::Error::other(format!(
            "{} chaos sessions errored; first: session {id}: {error}",
            errors.len()
        )));
    }
    let mismatches = report.parity_mismatches();
    if !mismatches.is_empty() {
        return Err(io::Error::other(format!(
            "decision parity broken under faults for {} sessions",
            mismatches.len()
        )));
    }
    let cs = report.client_stats;
    if cs.faults_injected() == 0 {
        return Err(io::Error::other("chaos soak injected no faults"));
    }

    let clean = report.clean_latencies();
    let faulted = report.faulted_latencies();
    if clean.len() as u64 + faulted.len() as u64 != report.decisions() {
        return Err(io::Error::other(format!(
            "latency split books broken: {} clean + {} faulted != {} decisions",
            clean.len(),
            faulted.len(),
            report.decisions()
        )));
    }
    if faulted.is_empty() {
        return Err(io::Error::other(
            "chaos soak marked no decision as faulted despite injected faults",
        ));
    }
    let wall = report.wall_time_s.max(f64::MIN_POSITIVE);
    let bench = ChaosBench {
        sessions: report.outcomes.len(),
        connections,
        server_threads: threads,
        decisions: report.decisions(),
        faulted_decisions: faulted.len() as u64,
        wall_time_s: report.wall_time_s,
        decisions_per_s: report.decisions() as f64 / wall,
        faults_injected: cs.faults_injected(),
        stalls: cs.stalls,
        truncated_writes: cs.truncated_writes,
        resets: cs.resets,
        reconnects: cs.reconnects,
        resumes: cs.resumes,
        retries: cs.retries,
        connections_reaped: stats.connections_reaped,
        sessions_resumed: stats.sessions_resumed,
        sessions_aborted: stats.sessions_aborted,
        latency_p50_ms: percentile(&clean, 50.0).unwrap_or(0.0) * 1e3,
        latency_p99_ms: percentile(&clean, 99.0).unwrap_or(0.0) * 1e3,
        faulted_latency_p99_ms: percentile(&faulted, 99.0).unwrap_or(0.0) * 1e3,
        parity_checked: report
            .outcomes
            .iter()
            .filter(|o| o.parity.is_some())
            .count(),
        parity_mismatches: mismatches.len(),
        degraded_sessions: report.degraded_sessions(),
        replay_events,
        replay_verified: true,
    };

    // Per-scheme breakdown, journaled like every other experiment: the QoE
    // a faulted-but-recovered fleet delivers must match the clean soak.
    let qoe = TraceSet::Lte.qoe_config();
    let mut by_scheme: BTreeMap<(String, String), Vec<&loadgen::SessionOutcome>> = BTreeMap::new();
    for outcome in &report.outcomes {
        by_scheme
            .entry((outcome.plan.scheme.clone(), outcome.plan.video.clone()))
            .or_default()
            .push(outcome);
    }
    let path = results_dir().join("exp_serve_chaos.csv");
    let mut csv = CsvWriter::create(
        &path,
        &[
            "scheme",
            "sessions",
            "decisions",
            "latency_p50_ms",
            "latency_p99_ms",
            "mean_quality",
            "mean_rebuf_s",
        ],
    )?;
    let mut table = TextTable::new(vec![
        "scheme",
        "sessions",
        "decisions",
        "p50 (ms)",
        "p99 (ms)",
        "quality",
        "rebuf (s)",
    ]);
    for ((scheme_name, video_name), outcomes) in &by_scheme {
        let video = engine::video(video_name);
        let mut lat: Vec<f64> = Vec::new();
        let mut decisions = 0u64;
        let mut quality = 0.0;
        let mut rebuf = 0.0;
        for outcome in outcomes {
            lat.extend_from_slice(&outcome.latencies_s);
            decisions += outcome.latencies_s.len() as u64;
            if let Some(session) = &outcome.result {
                let m = evaluate(session, &video, &video.classification, &qoe);
                quality += m.all_quality_mean;
                rebuf += m.rebuffer_s;
            }
        }
        let n = outcomes.len() as f64;
        let p50 = percentile(&lat, 50.0).unwrap_or(0.0) * 1e3;
        let p99 = percentile(&lat, 99.0).unwrap_or(0.0) * 1e3;
        journal::note_scheme_run(
            scheme_name,
            video_name,
            outcomes.len(),
            quality / n,
            rebuf / n,
        );
        table.add_row(vec![
            scheme_name.clone(),
            outcomes.len().to_string(),
            decisions.to_string(),
            format!("{p50:.3}"),
            format!("{p99:.3}"),
            format!("{:.1}", quality / n),
            format!("{:.2}", rebuf / n),
        ]);
        csv.write_str_row(&[
            scheme_name,
            &outcomes.len().to_string(),
            &decisions.to_string(),
            &format!("{p50:.4}"),
            &format!("{p99:.4}"),
            &format!("{:.2}", quality / n),
            &format!("{:.2}", rebuf / n),
        ])?;
    }
    csv.flush()?;
    print!("{table}");

    let bench_path = std::path::PathBuf::from("BENCH_serve_chaos.json");
    let json = serde_json::to_string_pretty(&bench).map_err(io::Error::other)?;
    std::fs::write(&bench_path, json)?;
    println!(
        "{} faults survived ({} stalls, {} truncated writes, {} resets)",
        bench.faults_injected, bench.stalls, bench.truncated_writes, bench.resets
    );
    println!(
        "{} retries, {} reconnects, {} resumes ({} server-side), {} reaped, {} aborted",
        bench.retries,
        bench.reconnects,
        bench.resumes,
        bench.sessions_resumed,
        bench.connections_reaped,
        bench.sessions_aborted
    );
    println!(
        "{} decisions ({} faulted) in {:.2}s, {:.0} decisions/s",
        bench.decisions, bench.faulted_decisions, bench.wall_time_s, bench.decisions_per_s
    );
    println!(
        "clean latency p50 {:.3} ms / p99 {:.3} ms; faulted p99 {:.3} ms",
        bench.latency_p50_ms, bench.latency_p99_ms, bench.faulted_latency_p99_ms
    );
    println!(
        "parity: {} checked, {} mismatches; {} degraded sessions",
        bench.parity_checked, bench.parity_mismatches, bench.degraded_sessions
    );
    println!("wrote {}", path.display());
    println!("wrote {}", bench_path.display());
    println!(
        "wrote {} ({} events; verify with `cava replay`)",
        replay_path.display(),
        bench.replay_events
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_document_round_trips_through_json() {
        let bench = ChaosBench {
            sessions: 120,
            connections: 6,
            server_threads: 8,
            decisions: 14_400,
            faulted_decisions: 1_200,
            wall_time_s: 9.5,
            decisions_per_s: 1_515.8,
            faults_injected: 300,
            stalls: 100,
            truncated_writes: 100,
            resets: 100,
            reconnects: 200,
            resumes: 180,
            retries: 250,
            connections_reaped: 0,
            sessions_resumed: 180,
            sessions_aborted: 0,
            latency_p50_ms: 0.2,
            latency_p99_ms: 1.5,
            faulted_latency_p99_ms: 25.0,
            parity_checked: 120,
            parity_mismatches: 0,
            degraded_sessions: 0,
            replay_events: 7_000,
            replay_verified: true,
        };
        let json = serde_json::to_string_pretty(&bench).unwrap();
        let back: ChaosBench = serde_json::from_str(&json).unwrap();
        assert_eq!(back, bench);
        for key in [
            "\"faults_injected\"",
            "\"faulted_decisions\"",
            "\"decisions_per_s\"",
            "\"faulted_latency_p99_ms\"",
            "\"reconnects\"",
            "\"resumes\"",
            "\"connections_reaped\"",
            "\"parity_mismatches\"",
            "\"replay_events\"",
            "\"replay_verified\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
    }
}
