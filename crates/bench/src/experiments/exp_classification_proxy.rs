//! Classification-proxy validation (extension) — §3.1.1's central claim,
//! tested end to end.
//!
//! The paper proposes *relative chunk size* as a deployable proxy for scene
//! complexity, with content-based SI/TI classification as the expensive
//! alternative real pipelines don't have. Two questions:
//!
//! 1. **Agreement** — across the whole dataset, how often do the two
//!    classifications assign the same class, and how well do their Q4 sets
//!    overlap?
//! 2. **Does it matter?** — stream with CAVA twice, once driven by each
//!    classification (CAVA gets the content-based classes through a wrapper
//!    that overrides its client-side computation). If the proxy is good,
//!    QoE should be nearly identical — which is exactly what makes the
//!    deployable variant sufficient.

use crate::engine;
use crate::experiments::banner;
use crate::harness::{run_with_factory, Metric, TraceSet};
use crate::results_dir;
use abr_sim::{AbrAlgorithm, DecisionContext, PlayerConfig};
use cava_core::{Cava, CavaConfig, InnerController, InnerInputs, OuterController, PidController};
use sim_report::{CsvWriter, TextTable};
use std::io;
use vbr_video::classify::{agreement, classification_from_si_ti, ChunkClass, Classification};
use vbr_video::Dataset;

/// CAVA with an externally supplied complexity classification (the
/// content-based SI/TI one), bypassing the client-side size computation.
/// Everything else — PID, inner, outer — is the standard CAVA pipeline.
struct CavaWithOracleClasses {
    config: CavaConfig,
    pid: PidController,
    inner: InnerController,
    outer: OuterController,
    is_complex: Vec<bool>,
    last_wall_time_s: f64,
}

impl CavaWithOracleClasses {
    fn new(is_complex: Vec<bool>) -> CavaWithOracleClasses {
        let config = CavaConfig::paper_default();
        CavaWithOracleClasses {
            pid: PidController::new(&config),
            inner: InnerController::new(&config),
            outer: OuterController::new(&config),
            config,
            is_complex,
            last_wall_time_s: 0.0,
        }
    }
}

impl AbrAlgorithm for CavaWithOracleClasses {
    fn name(&self) -> &str {
        "CAVA (SI/TI classes)"
    }

    fn choose_level(&mut self, ctx: &DecisionContext) -> usize {
        let target = self
            .outer
            .target_buffer_s(ctx.manifest, ctx.chunk_index, ctx.visible_chunks);
        // Same reachability clamp as the standard CAVA pipeline, so the two
        // arms of the experiment differ only in the classification source.
        let delta = ctx.manifest.chunk_duration();
        let reachable =
            ctx.visible_chunks.saturating_sub(ctx.chunk_index) as f64 * delta + ctx.buffer_s;
        let target = target.min((reachable - delta).max(2.0 * delta));
        let dt = (ctx.wall_time_s - self.last_wall_time_s).max(0.0);
        self.last_wall_time_s = ctx.wall_time_s;
        let u = self
            .pid
            .control(target, ctx.buffer_s, ctx.manifest.chunk_duration(), dt);
        let inputs = InnerInputs {
            manifest: ctx.manifest,
            chunk_index: ctx.chunk_index,
            u,
            estimated_bandwidth_bps: ctx.bandwidth_or_conservative(),
            last_level: ctx.last_level,
            buffer_s: ctx.buffer_s,
            visible_chunks: ctx.visible_chunks,
        };
        self.inner.select_level(&inputs, &self.is_complex)
    }

    fn reset(&mut self) {
        self.pid.reset();
        self.last_wall_time_s = 0.0;
        let _ = &self.config;
    }
}

/// Run this experiment (registry entry point).
pub fn run() -> io::Result<()> {
    banner(
        "ext: proxy validation",
        "Size-based vs content-based (SI/TI) classification (§3.1.1)",
    );

    // Part 1: agreement across the whole dataset.
    let mut table = TextTable::new(vec!["video", "class agreement", "Q4 overlap"]);
    let path = results_dir().join("exp_classification_proxy.csv");
    let mut csv = CsvWriter::create(&path, &["video", "agreement", "q4_overlap"])?;
    let mut q4_overlaps = Vec::new();
    for video in Dataset::conext18() {
        let by_size = Classification::from_video(&video);
        let by_content = classification_from_si_ti(&video);
        let overall = agreement(&by_size, &by_content);
        let q4_size: std::collections::BTreeSet<usize> =
            by_size.positions_of(ChunkClass::Q4).into_iter().collect();
        let q4_content: std::collections::BTreeSet<usize> = by_content
            .positions_of(ChunkClass::Q4)
            .into_iter()
            .collect();
        let overlap = q4_size.intersection(&q4_content).count() as f64 / q4_size.len() as f64;
        q4_overlaps.push(overlap);
        table.add_row(vec![
            video.name().to_string(),
            format!("{:.0}%", overall * 100.0),
            format!("{:.0}%", overlap * 100.0),
        ]);
        csv.write_str_row(&[
            video.name(),
            &format!("{overall:.3}"),
            &format!("{overlap:.3}"),
        ])?;
    }
    print!("{table}");
    let mean_overlap = q4_overlaps.iter().sum::<f64>() / q4_overlaps.len() as f64;
    println!(
        "mean Q4 overlap {:.0}% — the paper's 'high accuracy' proxy claim",
        mean_overlap * 100.0
    );

    // Part 2: does the residual disagreement matter for QoE?
    let video = engine::video("ED-ffmpeg-h264");
    let traces = engine::traces(TraceSet::Lte);
    let qoe = TraceSet::Lte.qoe_config();
    let player = PlayerConfig::default();
    let content_classes: Vec<bool> = {
        let c = classification_from_si_ti(&video);
        (0..video.n_chunks()).map(|i| c.is_q4(i)).collect()
    };
    let mut qoe_table = TextTable::new(vec![
        "classification",
        "Q4 qual",
        "Q1-3 qual",
        "rebuf (s)",
        "qual chg",
    ]);
    let runs: Vec<(&str, Vec<abr_sim::QoeMetrics>)> = vec![
        (
            "size-based (deployable)",
            run_with_factory(
                &|| Box::new(Cava::paper_default()),
                &video,
                &traces,
                &qoe,
                &player,
            ),
        ),
        (
            "SI/TI (content oracle)",
            run_with_factory(
                &|| Box::new(CavaWithOracleClasses::new(content_classes.clone())),
                &video,
                &traces,
                &qoe,
                &player,
            ),
        ),
    ];
    for (label, sessions) in &runs {
        qoe_table.add_row(vec![
            label.to_string(),
            format!("{:.1}", crate::mean_of(Metric::Q4Quality, sessions)),
            format!("{:.1}", crate::mean_of(Metric::Q13Quality, sessions)),
            format!("{:.1}", crate::mean_of(Metric::RebufferS, sessions)),
            format!("{:.2}", crate::mean_of(Metric::QualityChange, sessions)),
        ]);
    }
    csv.flush()?;
    print!("{qoe_table}");
    println!("near-identical rows = the deployable size proxy loses nothing (§3.2's argument)");
    println!("wrote {}", path.display());
    Ok(())
}
