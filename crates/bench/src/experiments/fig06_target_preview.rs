//! Fig. 6(b) (illustration → measurement): the outer controller's dynamic
//! target buffer level rising *ahead of* clusters of large chunks, and the
//! actual buffer following it.
//!
//! The paper presents Fig. 6(b) as a schematic; with the instrumented CAVA
//! ([`cava_core::probe::InstrumentedCava`]) we can plot the real thing: per
//! decision, the reference-track chunk size, the dynamic target `x_r(t)`,
//! and the buffer level.

use crate::engine;
use crate::experiments::banner;
use crate::harness::TraceSet;
use crate::results_dir;
use abr_sim::Simulator;
use cava_core::probe::InstrumentedCava;
use cava_core::Cava;
use sim_report::{AsciiChart, CsvWriter, Series};
use std::io;
use vbr_video::Manifest;

/// Run this experiment (registry entry point).
pub fn run() -> io::Result<()> {
    banner(
        "Fig. 6(b)",
        "Dynamic target buffer level vs upcoming chunk sizes",
    );
    let video = engine::video("ED-ffmpeg-h264");
    let manifest = Manifest::from_video(&video);
    let reference = manifest.n_tracks() / 2;

    // A mid-grade trace so the buffer actually has dynamics.
    let traces = engine::traces(TraceSet::Lte);
    let trace = traces
        .iter()
        .filter(|t| t.mean_bps() > 1.5e6 && t.mean_bps() < 3.0e6)
        .max_by(|a, b| a.mean_bps().partial_cmp(&b.mean_bps()).expect("finite"))
        .unwrap_or(&traces[0])
        .clone();
    println!(
        "trace {} (mean {:.2} Mbps)",
        trace.name(),
        trace.mean_bps() / 1e6
    );

    let mut probe = InstrumentedCava::new(Cava::paper_default());
    let session = Simulator::paper_default().run(&mut probe, &manifest, &trace);
    println!(
        "session: mean level {:.2}, rebuffering {:.1}s",
        session.mean_level(),
        session.total_stall_s
    );

    let base = probe.inner().config().base_target_buffer_s;
    let raised = probe
        .decisions()
        .iter()
        .filter(|d| d.target_buffer_s > base + 1.0)
        .count();
    println!(
        "target above base (60s) on {raised}/{} decisions — the preview at work",
        probe.decisions().len()
    );

    let mut chart = AsciiChart::new("target buffer (T) vs actual buffer (b), seconds", 100, 18)
        .x_label("chunk index")
        .y_label("seconds");
    chart.add_series(Series::new(
        "target",
        'T',
        probe
            .decisions()
            .iter()
            .map(|d| (d.chunk_index as f64, d.target_buffer_s))
            .collect(),
    ));
    chart.add_series(Series::new(
        "buffer",
        'b',
        probe
            .decisions()
            .iter()
            .map(|d| (d.chunk_index as f64, d.buffer_s))
            .collect(),
    ));
    print!("{chart}");

    let path = results_dir().join("fig06_target_preview.csv");
    let mut csv = CsvWriter::create(
        &path,
        &[
            "chunk",
            "ref_chunk_kb",
            "target_s",
            "buffer_s",
            "control_u",
            "level",
        ],
    )?;
    for d in probe.decisions() {
        csv.write_numeric_row(&[
            d.chunk_index as f64,
            manifest.chunk_bytes(reference, d.chunk_index) as f64 / 1e3,
            d.target_buffer_s,
            d.buffer_s,
            d.control_signal,
            d.level as f64,
        ])?;
    }
    csv.flush()?;
    println!("wrote {}", path.display());
    Ok(())
}
