//! §6.2 (text) — impact of the outer-controller window size `W′`.
//!
//! The paper: "the amount of rebuffering decreases as W′ increases since the
//! controller reacts more proactively …; for some videos the amount of
//! rebuffering may start to increase as W′ increases further" (very long
//! windows average the variability away, Eq. 5's increment vanishes).
//! `W′ = 200 s` is the chosen value.

use crate::engine;
use crate::experiments::banner;
use crate::harness::{run_with_factory, Metric, TraceSet};
use crate::results_dir;
use abr_sim::PlayerConfig;
use cava_core::{Cava, CavaConfig};
use sim_report::{CsvWriter, TextTable};
use std::io;

/// W′ sweep grid in seconds (0 disables the proactive adjustment).
pub const OUTER_SWEEP_S: [f64; 6] = [0.0, 40.0, 100.0, 200.0, 400.0, 600.0];

/// Run this experiment (registry entry point).
pub fn run() -> io::Result<()> {
    banner("§6.2", "Impact of outer controller window size W'");
    let traces = engine::traces(TraceSet::Lte);
    let qoe = TraceSet::Lte.qoe_config();
    let player = PlayerConfig::default();

    let path = results_dir().join("exp_outer_window.csv");
    let mut csv = CsvWriter::create(
        &path,
        &["video", "w_prime_s", "rebuf_mean", "rebuf_p90", "q4_mean"],
    )?;
    for video in [
        engine::video("ED-ffmpeg-h264"),
        engine::video("ED-youtube-h264"),
    ] {
        println!("--- {}", video.name());
        let mut table = TextTable::new(vec![
            "W' (s)",
            "rebuffer mean (s)",
            "rebuffer p90 (s)",
            "Q4 quality mean",
        ]);
        for w in OUTER_SWEEP_S {
            let config = CavaConfig {
                outer_window_s: w,
                enable_proactive: w > 0.0,
                ..CavaConfig::paper_default()
            };
            let sessions = run_with_factory(
                &move || Box::new(Cava::new(config)),
                &video,
                &traces,
                &qoe,
                &player,
            );
            let rebuf = crate::harness::metric_cdf(Metric::RebufferS, &sessions);
            let q4 = crate::harness::mean_of(Metric::Q4Quality, &sessions);
            table.add_row(vec![
                format!("{w:.0}"),
                format!("{:.2}", rebuf.mean()),
                format!("{:.2}", rebuf.quantile(0.90)),
                format!("{q4:.1}"),
            ]);
            csv.write_str_row(&[
                video.name(),
                &format!("{w:.0}"),
                &format!("{:.4}", rebuf.mean()),
                &format!("{:.4}", rebuf.quantile(0.90)),
                &format!("{q4:.2}"),
            ])?;
        }
        print!("{table}");
    }
    csv.flush()?;
    println!("paper: rebuffering falls as W' grows, then can rise again for very large W'");
    println!("wrote {}", path.display());
    Ok(())
}
