//! Table 1 — CAVA's deltas against RobustMPC and PANDA/CQ max-min across the
//! 8 YouTube videos under LTE traces and the 4 Xiph YouTube videos under
//! FCC traces.
//!
//! Cell convention (as in the paper): two values per cell — CAVA relative to
//! RobustMPC, then CAVA relative to PANDA/CQ max-min. Q4 quality is an
//! absolute VMAF delta (↑ better); the other four metrics are percentage
//! changes (↓ better).

use crate::engine;
use crate::experiments::{banner, pct_delta};
use crate::harness::{mean_of, run_scheme, Metric, SchemeKind, TraceSet};
use crate::results_dir;
use abr_sim::PlayerConfig;
use sim_report::table::arrow_delta;
use sim_report::{CsvWriter, TextTable};
use std::io;

/// The Table 1 video grid: `(video, trace set)`.
pub fn grid() -> Vec<(String, TraceSet)> {
    let mut rows = Vec::new();
    for name in [
        "BBB-youtube-h264",
        "ED-youtube-h264",
        "Sintel-youtube-h264",
        "ToS-youtube-h264",
        "Animal-youtube-h264",
        "Nature-youtube-h264",
        "Sports-youtube-h264",
        "Action-youtube-h264",
    ] {
        rows.push((name.to_string(), TraceSet::Lte));
    }
    for name in [
        "BBB-youtube-h264",
        "ED-youtube-h264",
        "Sintel-youtube-h264",
        "ToS-youtube-h264",
    ] {
        rows.push((name.to_string(), TraceSet::Fcc));
    }
    rows
}

/// Run this experiment (registry entry point).
pub fn run() -> io::Result<()> {
    banner(
        "Table 1",
        "Performance comparison — YouTube videos (LTE + FCC)",
    );
    let mut table = TextTable::new(vec![
        "set",
        "video",
        "Q4 quality",
        "low-qual %",
        "stall %",
        "qual chg %",
        "data %",
    ]);
    let path = results_dir().join("table1_youtube.csv");
    let mut csv = CsvWriter::create(
        &path,
        &[
            "trace_set",
            "video",
            "scheme",
            "q4_quality",
            "low_quality_pct",
            "rebuffer_s",
            "quality_change",
            "data_mb",
        ],
    )?;
    let player = PlayerConfig::default();
    let mut prev_set = TraceSet::Lte;
    for (video_name, set) in grid() {
        if set != prev_set {
            table.add_separator();
            prev_set = set;
        }
        let video = engine::video(&video_name);
        let traces = engine::traces(set);
        let qoe = set.qoe_config();
        let schemes = [
            SchemeKind::Cava,
            SchemeKind::RobustMpc,
            SchemeKind::PandaMaxMin,
        ];
        let results: Vec<_> = schemes
            .iter()
            .map(|&s| run_scheme(s, &video, &traces, &qoe, &player))
            .collect();
        for (scheme, sessions) in schemes.iter().zip(&results) {
            csv.write_str_row(&[
                set.name(),
                &video_name,
                scheme.name(),
                &format!("{:.2}", mean_of(Metric::Q4Quality, sessions)),
                &format!("{:.2}", mean_of(Metric::LowQualityPct, sessions)),
                &format!("{:.2}", mean_of(Metric::RebufferS, sessions)),
                &format!("{:.3}", mean_of(Metric::QualityChange, sessions)),
                &format!("{:.1}", mean_of(Metric::DataUsageMb, sessions)),
            ])?;
        }
        let cell = |metric: Metric, absolute: bool| -> String {
            let cava = mean_of(metric, &results[0]);
            let deltas: Vec<String> = (1..3)
                .map(|i| {
                    let other = mean_of(metric, &results[i]);
                    if absolute {
                        arrow_delta(cava - other, "", 0)
                    } else {
                        arrow_delta(pct_delta(cava, other), "%", 0)
                    }
                })
                .collect();
            deltas.join(", ")
        };
        let short = video_name.trim_end_matches("-youtube-h264");
        table.add_row(vec![
            set.name().to_string(),
            short.to_string(),
            cell(Metric::Q4Quality, true),
            cell(Metric::LowQualityPct, false),
            cell(Metric::RebufferS, false),
            cell(Metric::QualityChange, false),
            cell(Metric::DataUsageMb, false),
        ]);
    }
    csv.flush()?;
    print!("{table}");
    println!("cells: CAVA vs RobustMPC, CAVA vs PANDA/CQ max-min (paper's convention)");
    println!("paper LTE ranges: Q4 ↑8-18/↑3-9; low-qual ↓4-75%; stall ↓62-95%; qchg ↓25-48%; data ↓2-11%");
    println!("wrote {}", path.display());
    Ok(())
}
