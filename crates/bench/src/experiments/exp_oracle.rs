//! Oracle-prediction headroom (extension) — the flip side of §6.7.
//!
//! §6.7 injects *errors* into the bandwidth estimate; this experiment
//! removes them entirely: the estimate becomes the true mean bandwidth of
//! the next 20 s of the trace — an upper bound on what learned predictors
//! (the paper's CS2P and Oboe citations) could deliver. The
//! question: how much of each scheme's deficit is *prediction* (fixable by
//! better forecasting) versus *decision structure* (what CAVA's principles
//! address)? If CAVA-with-harmonic-mean already sits near CAVA-with-oracle,
//! its advantage is structural — the paper's §6.7 interpretation, measured
//! from the other side.

use crate::engine;
use crate::experiments::banner;
use crate::harness::{mean_of, run_scheme, Metric, SchemeKind, TraceSet};
use crate::results_dir;
use abr_sim::PlayerConfig;
use sim_report::{CsvWriter, TextTable};
use std::io;

/// Run this experiment (registry entry point).
pub fn run() -> io::Result<()> {
    banner(
        "ext: oracle",
        "Perfect bandwidth prediction vs harmonic mean",
    );
    let video = engine::video("ED-ffmpeg-h264");
    let traces = engine::traces(TraceSet::Lte);
    let qoe = TraceSet::Lte.qoe_config();

    let path = results_dir().join("exp_oracle.csv");
    let mut csv = CsvWriter::create(
        &path,
        &["scheme", "predictor", "q4", "all", "rebuf_s", "low_pct"],
    )?;
    let mut table = TextTable::new(vec![
        "scheme",
        "predictor",
        "Q4 qual",
        "all qual",
        "rebuf (s)",
        "low-q %",
    ]);
    for scheme in [
        SchemeKind::Cava,
        SchemeKind::RobustMpc,
        SchemeKind::PandaMaxMin,
    ] {
        for (label, player) in [
            ("harmonic-5", PlayerConfig::default()),
            (
                "oracle-20s",
                PlayerConfig {
                    oracle_horizon_s: Some(20.0),
                    ..PlayerConfig::default()
                },
            ),
        ] {
            let sessions = run_scheme(scheme, &video, &traces, &qoe, &player);
            table.add_row(vec![
                scheme.name().to_string(),
                label.to_string(),
                format!("{:.1}", mean_of(Metric::Q4Quality, &sessions)),
                format!("{:.1}", mean_of(Metric::AllQuality, &sessions)),
                format!("{:.1}", mean_of(Metric::RebufferS, &sessions)),
                format!("{:.1}", mean_of(Metric::LowQualityPct, &sessions)),
            ]);
            csv.write_str_row(&[
                scheme.name(),
                label,
                &format!("{:.2}", mean_of(Metric::Q4Quality, &sessions)),
                &format!("{:.2}", mean_of(Metric::AllQuality, &sessions)),
                &format!("{:.2}", mean_of(Metric::RebufferS, &sessions)),
                &format!("{:.2}", mean_of(Metric::LowQualityPct, &sessions)),
            ])?;
        }
        table.add_separator();
    }
    csv.flush()?;
    print!("{table}");
    println!("small oracle deltas = the scheme's behaviour is structural, not prediction-bound");
    println!("wrote {}", path.display());
    Ok(())
}
