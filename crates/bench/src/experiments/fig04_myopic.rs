//! Fig. 4 — per-chunk quality timeline of two myopic schemes (BBA-1, RBA)
//! against CAVA on one LTE trace, with Q4 positions marked.
//!
//! The paper's illustration of the non-myopic principle: myopic schemes
//! "mechanically select very high (low) levels for chunks with small
//! (large) sizes — exactly the opposite to what is desirable"; in its
//! example the average Q4 VMAF is 49 (BBA-1) and 52 (RBA) versus 65 for
//! CAVA, with 6 s / 4 s / 0 s of rebuffering.

use crate::engine;
use crate::experiments::banner;
use crate::harness::{run_sessions, SchemeKind, TraceSet};
use crate::results_dir;
use abr_sim::metrics::chunk_qualities;
use abr_sim::PlayerConfig;
use sim_report::{AsciiChart, CsvWriter, Series, TextTable};
use std::io;
use vbr_video::Classification;

/// Run this experiment (registry entry point).
pub fn run() -> io::Result<()> {
    banner(
        "Fig. 4",
        "Two myopic schemes and CAVA (per-chunk VMAF timeline)",
    );
    let video = engine::video("ED-youtube-h264");
    let classification = Classification::from_video(&video);
    let qoe = TraceSet::Lte.qoe_config();
    let player = PlayerConfig::default();

    // Pick a moderately constrained trace: mean bandwidth near the middle of
    // the ladder, so schemes must make real choices.
    let traces = engine::traces(TraceSet::Lte);
    let trace = traces
        .iter()
        .filter(|t| t.mean_bps() > 1.2e6 && t.mean_bps() < 2.5e6)
        .max_by(|a, b| a.mean_bps().partial_cmp(&b.mean_bps()).expect("finite"))
        .unwrap_or(&traces[0])
        .clone();
    println!(
        "trace {} (mean {:.2} Mbps)",
        trace.name(),
        trace.mean_bps() / 1e6
    );

    let schemes = [SchemeKind::Bba1, SchemeKind::Rba, SchemeKind::Cava];
    let mut table = TextTable::new(vec!["scheme", "avg Q4 VMAF", "rebuffering (s)"]);
    let mut timelines: Vec<(String, Vec<f64>)> = Vec::new();
    for scheme in schemes {
        let session = run_sessions(scheme, &video, std::slice::from_ref(&trace), &qoe, &player)
            .pop()
            .expect("one session");
        let qualities = chunk_qualities(&session, &video, qoe.vmaf_model);
        let q4: Vec<f64> = (0..video.n_chunks())
            .filter(|&i| classification.is_q4(i))
            .map(|i| qualities[i])
            .collect();
        let q4_mean = q4.iter().sum::<f64>() / q4.len() as f64;
        table.add_row(vec![
            scheme.name().to_string(),
            format!("{q4_mean:.1}"),
            format!("{:.1}", session.total_stall_s),
        ]);
        timelines.push((scheme.name().to_string(), qualities));
    }
    print!("{table}");
    println!("paper's example: BBA-1 49 / RBA 52 / CAVA 65; rebuffering 6s / 4s / 0s");

    // ASCII: CAVA vs RBA timelines, Q4 positions marked on the floor.
    let mut chart = AsciiChart::new(
        "per-chunk VMAF ('c' = CAVA, 'r' = RBA, '^' = Q4 position)",
        100,
        20,
    )
    .x_label("chunk index")
    .y_label("VMAF");
    let series_points = |qs: &[f64]| -> Vec<(f64, f64)> {
        qs.iter().enumerate().map(|(i, &q)| (i as f64, q)).collect()
    };
    chart.add_series(Series::new("RBA", 'r', series_points(&timelines[1].1)));
    chart.add_series(Series::new("CAVA", 'c', series_points(&timelines[2].1)));
    let q4_marks: Vec<(f64, f64)> = (0..video.n_chunks())
        .filter(|&i| classification.is_q4(i))
        .map(|i| (i as f64, 0.0))
        .collect();
    chart.add_series(Series::new("Q4 position", '^', q4_marks));
    print!("{chart}");

    // CSV.
    let path = results_dir().join("fig04_myopic.csv");
    let mut csv = CsvWriter::create(&path, &["chunk", "is_q4", "bba1", "rba", "cava"])?;
    for i in 0..video.n_chunks() {
        csv.write_numeric_row(&[
            i as f64,
            if classification.is_q4(i) { 1.0 } else { 0.0 },
            timelines[0].1[i],
            timelines[1].1[i],
            timelines[2].1[i],
        ])?;
    }
    csv.flush()?;
    println!("wrote {}", path.display());
    Ok(())
}
