//! Offline-optimal headroom (extension) — how close do CAVA and the
//! baselines get to the best any scheme could do?
//!
//! `OfflineOptimal` plans each trace with full knowledge (trace + quality
//! table), maximizing `Σ quality − λ·Σ|Δquality|` over stall-free
//! trajectories — an upper bound on the linear QoE objective. Per-trace
//! plans are computed in parallel, replayed through the same simulator, and
//! evaluated with the same metrics as everything else.

use crate::engine;
use crate::experiments::banner;
use crate::harness::{mean_of, run_scheme, Metric, SchemeKind, TraceSet};
use crate::results_dir;
use abr_baselines::{OfflineOptConfig, OfflineOptimal};
use abr_sim::metrics::{evaluate, LinearQoeWeights, QoeMetrics};
use abr_sim::{PlayerConfig, Simulator};
use sim_report::{CsvWriter, TextTable};
use std::io;
use vbr_video::{Classification, Manifest};

/// Run this experiment (registry entry point).
pub fn run() -> io::Result<()> {
    banner(
        "ext: offline optimal",
        "Headroom above online schemes (DP upper bound)",
    );
    let video = engine::video("ED-ffmpeg-h264");
    let manifest = Manifest::from_video(&video);
    let classification = Classification::from_video(&video);
    let traces = engine::traces(TraceSet::Lte);
    let qoe = TraceSet::Lte.qoe_config();
    let player = PlayerConfig::default();
    let opt_cfg = OfflineOptConfig::default();

    // Plan + replay OPT per trace, in parallel slabs.
    let n_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(traces.len());
    let chunk = traces.len().div_ceil(n_threads);
    let mut opt_sessions: Vec<Option<QoeMetrics>> = vec![None; traces.len()];
    std::thread::scope(|scope| {
        for (trace_slab, result_slab) in traces.chunks(chunk).zip(opt_sessions.chunks_mut(chunk)) {
            let video = &video;
            let manifest = &manifest;
            let classification = &classification;
            let qoe = &qoe;
            scope.spawn(move || {
                let sim = Simulator::new(player);
                for (trace, slot) in trace_slab.iter().zip(result_slab.iter_mut()) {
                    let mut opt = OfflineOptimal::plan(video, trace, &player, &opt_cfg);
                    let session = sim.run(&mut opt, manifest, trace);
                    *slot = Some(evaluate(&session, video, classification, qoe));
                }
            });
        }
    });
    let opt_metrics: Vec<QoeMetrics> = opt_sessions
        .into_iter()
        .map(|s| s.expect("filled"))
        .collect();

    let schemes = [
        SchemeKind::Cava,
        SchemeKind::RobustMpc,
        SchemeKind::PandaMaxMin,
    ];
    let mut results: Vec<(String, Vec<QoeMetrics>)> =
        vec![("OPT (offline)".to_string(), opt_metrics)];
    for scheme in schemes {
        results.push((
            scheme.name().to_string(),
            run_scheme(scheme, &video, &traces, &qoe, &player),
        ));
    }

    let weights = LinearQoeWeights::default();
    let path = results_dir().join("exp_offline_opt.csv");
    let mut csv = CsvWriter::create(
        &path,
        &["scheme", "linear_qoe", "q4", "all", "rebuf_s", "qchange"],
    )?;
    let mut table = TextTable::new(vec![
        "scheme",
        "linear QoE",
        "Q4 qual",
        "all qual",
        "rebuf (s)",
        "qual chg",
    ]);
    let n_chunks = manifest.n_chunks();
    for (name, sessions) in &results {
        let linear = sessions
            .iter()
            .map(|m| m.linear_score(&weights, n_chunks))
            .sum::<f64>()
            / sessions.len() as f64;
        table.add_row(vec![
            name.clone(),
            format!("{linear:.1}"),
            format!("{:.1}", mean_of(Metric::Q4Quality, sessions)),
            format!("{:.1}", mean_of(Metric::AllQuality, sessions)),
            format!("{:.1}", mean_of(Metric::RebufferS, sessions)),
            format!("{:.2}", mean_of(Metric::QualityChange, sessions)),
        ]);
        csv.write_str_row(&[
            name,
            &format!("{linear:.2}"),
            &format!("{:.2}", mean_of(Metric::Q4Quality, sessions)),
            &format!("{:.2}", mean_of(Metric::AllQuality, sessions)),
            &format!("{:.2}", mean_of(Metric::RebufferS, sessions)),
            &format!("{:.3}", mean_of(Metric::QualityChange, sessions)),
        ])?;
    }
    csv.flush()?;
    print!("{table}");
    println!("OPT bounds the linear QoE objective; the gap to it is each scheme's headroom.");
    println!("note: OPT optimizes overall quality, not the paper's Q4-differential objective —");
    println!("CAVA may legitimately exceed OPT's *Q4 column* by sacrificing Q1-Q3.");
    println!("wrote {}", path.display());
    Ok(())
}
