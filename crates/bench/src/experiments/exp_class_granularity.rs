//! Classification-granularity ablation (extension) — §3.1.1's remark that
//! the size-based classification "is based on quartiles. Other methods can
//! also be used (e.g., using five classes instead of four); our design
//! principles and rate adaptation scheme are independent of this specific
//! classification method."
//!
//! CAVA runs with K ∈ {2..6} equal-frequency size classes (the top class
//! gets differential treatment); evaluation always measures the standard
//! quartile-Q4 metrics so the rows are comparable. The expectation: CAVA's
//! advantage is robust to K, with the top-class *width* (1/K of chunks)
//! trading Q4 coverage against the bandwidth saved on the rest.

use crate::engine;
use crate::experiments::banner;
use crate::harness::{run_with_factory, Metric, TraceSet};
use crate::results_dir;
use abr_sim::PlayerConfig;
use cava_core::{Cava, CavaConfig};
use sim_report::{CsvWriter, TextTable};
use std::io;

/// The class-count grid.
pub const K_SWEEP: [usize; 5] = [2, 3, 4, 5, 6];

/// Run this experiment (registry entry point).
pub fn run() -> io::Result<()> {
    banner(
        "ext: class granularity",
        "CAVA with K size classes instead of quartiles (§3.1.1)",
    );
    let video = engine::video("ED-ffmpeg-h264");
    let traces = engine::traces(TraceSet::Lte);
    let qoe = TraceSet::Lte.qoe_config();
    let player = PlayerConfig::default();

    let path = results_dir().join("exp_class_granularity.csv");
    let mut csv = CsvWriter::create(&path, &["k", "q4", "q13", "low_pct", "rebuf_s", "qchange"])?;
    let mut table = TextTable::new(vec![
        "K (top class = complex)",
        "Q4 qual",
        "Q1-3 qual",
        "low-q %",
        "rebuf (s)",
        "qual chg",
    ]);
    for k in K_SWEEP {
        let config = CavaConfig {
            n_classes: k,
            ..CavaConfig::paper_default()
        };
        let sessions = run_with_factory(
            &move || Box::new(Cava::new(config)),
            &video,
            &traces,
            &qoe,
            &player,
        );
        table.add_row(vec![
            format!("{k}{}", if k == 4 { " (paper)" } else { "" }),
            format!("{:.1}", crate::mean_of(Metric::Q4Quality, &sessions)),
            format!("{:.1}", crate::mean_of(Metric::Q13Quality, &sessions)),
            format!("{:.1}", crate::mean_of(Metric::LowQualityPct, &sessions)),
            format!("{:.1}", crate::mean_of(Metric::RebufferS, &sessions)),
            format!("{:.2}", crate::mean_of(Metric::QualityChange, &sessions)),
        ]);
        csv.write_str_row(&[
            &k.to_string(),
            &format!("{:.2}", crate::mean_of(Metric::Q4Quality, &sessions)),
            &format!("{:.2}", crate::mean_of(Metric::Q13Quality, &sessions)),
            &format!("{:.2}", crate::mean_of(Metric::LowQualityPct, &sessions)),
            &format!("{:.2}", crate::mean_of(Metric::RebufferS, &sessions)),
            &format!("{:.3}", crate::mean_of(Metric::QualityChange, &sessions)),
        ])?;
    }
    csv.flush()?;
    print!("{table}");
    println!("paper §3.1.1: the scheme is independent of the specific classification method —");
    println!("metrics should vary smoothly and modestly across K");
    println!("wrote {}", path.display());
    Ok(())
}
