//! PIA vs CAVA (extension) — what "generalizing the control framework from
//! plain CBR to VBR" (§5.1) buys.
//!
//! PIA [the paper's ref. 33] is the authors' PID controller for CBR: fixed
//! target buffer, tracks represented by declared average bitrates, chunk
//! sizes ignored. CAVA keeps the control core and adds the three VBR
//! principles. Running both on VBR content isolates the value of the
//! generalization; running CAVA's ablation chain alongside shows where each
//! step of the lineage (PIA → p1 → p12 → p123) contributes.

use crate::engine;
use crate::experiments::banner;
use crate::harness::{mean_of, run_scheme, Metric, SchemeKind, TraceSet};
use crate::results_dir;
use abr_sim::PlayerConfig;
use sim_report::{CsvWriter, TextTable};
use std::io;

/// Run this experiment (registry entry point).
pub fn run() -> io::Result<()> {
    banner(
        "ext: PIA → CAVA",
        "The CBR-to-VBR control lineage on VBR content",
    );
    let traces = engine::traces(TraceSet::Lte);
    let qoe = TraceSet::Lte.qoe_config();
    let player = PlayerConfig::default();
    let path = results_dir().join("exp_pia_vs_cava.csv");
    let mut csv = CsvWriter::create(
        &path,
        &[
            "video", "scheme", "q4", "q13", "low_pct", "rebuf_s", "qchange", "data_mb",
        ],
    )?;
    for video in [
        engine::video("ED-ffmpeg-h264"),
        engine::video("ED-youtube-h264"),
    ] {
        println!("--- {}", video.name());
        let mut table = TextTable::new(vec![
            "scheme",
            "Q4 qual",
            "Q1-3 qual",
            "low-q %",
            "rebuf (s)",
            "qual chg",
            "data (MB)",
        ]);
        for scheme in [
            SchemeKind::Pia,
            SchemeKind::CavaP1,
            SchemeKind::CavaP12,
            SchemeKind::Cava,
        ] {
            let sessions = run_scheme(scheme, &video, &traces, &qoe, &player);
            table.add_row(vec![
                scheme.name().to_string(),
                format!("{:.1}", mean_of(Metric::Q4Quality, &sessions)),
                format!("{:.1}", mean_of(Metric::Q13Quality, &sessions)),
                format!("{:.1}", mean_of(Metric::LowQualityPct, &sessions)),
                format!("{:.1}", mean_of(Metric::RebufferS, &sessions)),
                format!("{:.2}", mean_of(Metric::QualityChange, &sessions)),
                format!("{:.0}", mean_of(Metric::DataUsageMb, &sessions)),
            ]);
            csv.write_str_row(&[
                video.name(),
                scheme.name(),
                &format!("{:.2}", mean_of(Metric::Q4Quality, &sessions)),
                &format!("{:.2}", mean_of(Metric::Q13Quality, &sessions)),
                &format!("{:.2}", mean_of(Metric::LowQualityPct, &sessions)),
                &format!("{:.2}", mean_of(Metric::RebufferS, &sessions)),
                &format!("{:.3}", mean_of(Metric::QualityChange, &sessions)),
                &format!("{:.1}", mean_of(Metric::DataUsageMb, &sessions)),
            ])?;
        }
        print!("{table}");
    }
    csv.flush()?;
    println!("each row adds one step of VBR-awareness to the same PID core (§5.1)");
    println!("wrote {}", path.display());
    Ok(())
}
