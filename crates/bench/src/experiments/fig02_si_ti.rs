//! Fig. 2 — SI/TI of chunks coloured by size-quartile class (Elephant
//! Dream, track 3), for the H.264 and H.265 encodings.
//!
//! Validates the paper's Property 1: size quartiles track content
//! complexity. The paper reports that 78 % (H.264) / 75 % (H.265) of Q4
//! chunks have SI > 25 and TI > 7, against ≈ 11 % / 5 % of Q1 chunks; it
//! also verifies Property 2 (cross-track consistency, correlations ≈ 1).

use crate::engine;
use crate::experiments::banner;
use crate::results_dir;
use sim_report::{AsciiChart, CsvWriter, Series, TextTable};
use std::io;
use vbr_video::classify::{cross_track_consistency, ChunkClass, Classification};
use vbr_video::Video;

const SI_THRESHOLD: f64 = 25.0;
const TI_THRESHOLD: f64 = 7.0;

/// Run this experiment (registry entry point).
pub fn run() -> io::Result<()> {
    banner(
        "Fig. 2",
        "Chunk SI & TI by size-quartile class (ED, track 3)",
    );
    for name in ["ED-ffmpeg-h264", "ED-ffmpeg-h265"] {
        let video = engine::video(name);
        report_one(&video)?;
    }
    Ok(())
}

fn report_one(video: &Video) -> io::Result<()> {
    println!("--- {}", video.name());
    let classification = Classification::from_video(video);
    let sc = video.complexity();

    let mut table = TextTable::new(vec![
        "class",
        "n",
        "mean SI",
        "mean TI",
        &format!("% with SI>{SI_THRESHOLD:.0} & TI>{TI_THRESHOLD:.0}"),
    ]);
    for class in ChunkClass::ALL {
        let pos = classification.positions_of(class);
        let n = pos.len() as f64;
        let mean_si = pos.iter().map(|&i| sc.si(i)).sum::<f64>() / n;
        let mean_ti = pos.iter().map(|&i| sc.ti(i)).sum::<f64>() / n;
        let above = pos
            .iter()
            .filter(|&&i| sc.si(i) > SI_THRESHOLD && sc.ti(i) > TI_THRESHOLD)
            .count() as f64;
        table.add_row(vec![
            class.label().to_string(),
            format!("{}", pos.len()),
            format!("{mean_si:.1}"),
            format!("{mean_ti:.1}"),
            format!("{:.0}%", 100.0 * above / n),
        ]);
    }
    print!("{table}");
    println!("paper: Q4 ≈ 78% (H.264) / 75% (H.265) above thresholds; Q1 ≈ 11% / 5%");

    // Property 2: cross-track size consistency.
    let min_corr = cross_track_consistency(video);
    println!("min cross-track size correlation (paper: 'close to 1'): {min_corr:.3}");

    // ASCII scatter: Q1 dots vs Q4 hashes.
    let mut chart = AsciiChart::new("SI/TI scatter (Q1 = '.', Q4 = '#')", 80, 20)
        .x_label("SI")
        .y_label("TI");
    for (class, glyph) in [(ChunkClass::Q1, '.'), (ChunkClass::Q4, '#')] {
        let points: Vec<(f64, f64)> = classification
            .positions_of(class)
            .iter()
            .map(|&i| (sc.si(i), sc.ti(i)))
            .collect();
        chart.add_series(Series::new(class.label(), glyph, points));
    }
    print!("{chart}");

    // CSV: chunk, si, ti, class.
    let path = results_dir().join(format!("fig02_si_ti_{}.csv", video.name()));
    let mut csv = CsvWriter::create(&path, &["chunk", "si", "ti", "class"])?;
    for i in 0..video.n_chunks() {
        csv.write_str_row(&[
            &i.to_string(),
            &format!("{:.2}", sc.si(i)),
            &format!("{:.2}", sc.ti(i)),
            classification.class(i).label(),
        ])?;
    }
    csv.flush()?;
    println!("wrote {}", path.display());
    Ok(())
}
