//! Table 2 — CAVA versus BOLA-E (seg) in the dash.js setting (§6.8), four
//! YouTube videos under LTE traces.
//!
//! Paper: CAVA's Q4 quality is 10–21 VMAF higher, low-quality chunks
//! 73–87 % fewer, rebuffering 15–65 % lower, quality changes 24–45 % lower —
//! while BOLA-E (seg) uses less data (the paper reports CAVA using 25–56 %
//! more).

use crate::engine;
use crate::experiments::{banner, pct_delta};
use crate::harness::{mean_of, run_scheme, Metric, SchemeKind, TraceSet};
use crate::results_dir;
use abr_sim::PlayerConfig;
use sim_report::table::arrow_delta;
use sim_report::{CsvWriter, TextTable};
use std::io;

/// Table 2's four videos.
pub const VIDEOS: [&str; 4] = [
    "BBB-youtube-h264",
    "ED-youtube-h264",
    "Sports-youtube-h264",
    "ToS-youtube-h264",
];

/// Run this experiment (registry entry point).
pub fn run() -> io::Result<()> {
    banner("Table 2", "CAVA versus BOLA-E (seg) in the dash.js setting");
    let traces = engine::traces(TraceSet::Lte);
    let qoe = TraceSet::Lte.qoe_config();
    let player = PlayerConfig::default();

    let mut table = TextTable::new(vec![
        "video",
        "Q4 quality",
        "low-qual %",
        "stall %",
        "qual chg %",
        "data %",
    ]);
    let path = results_dir().join("table2_bola_seg.csv");
    let mut csv = CsvWriter::create(
        &path,
        &[
            "video",
            "scheme",
            "q4_quality",
            "low_quality_pct",
            "rebuffer_s",
            "quality_change",
            "data_mb",
        ],
    )?;
    for video_name in VIDEOS {
        let video = engine::video(video_name);
        let cava = run_scheme(SchemeKind::Cava, &video, &traces, &qoe, &player);
        let bola = run_scheme(SchemeKind::BolaESeg, &video, &traces, &qoe, &player);
        for (scheme, sessions) in [(SchemeKind::Cava, &cava), (SchemeKind::BolaESeg, &bola)] {
            csv.write_str_row(&[
                video_name,
                scheme.name(),
                &format!("{:.2}", mean_of(Metric::Q4Quality, sessions)),
                &format!("{:.2}", mean_of(Metric::LowQualityPct, sessions)),
                &format!("{:.2}", mean_of(Metric::RebufferS, sessions)),
                &format!("{:.3}", mean_of(Metric::QualityChange, sessions)),
                &format!("{:.1}", mean_of(Metric::DataUsageMb, sessions)),
            ])?;
        }
        let short = video_name.trim_end_matches("-youtube-h264");
        table.add_row(vec![
            short.to_string(),
            arrow_delta(
                mean_of(Metric::Q4Quality, &cava) - mean_of(Metric::Q4Quality, &bola),
                "",
                0,
            ),
            arrow_delta(
                pct_delta(
                    mean_of(Metric::LowQualityPct, &cava),
                    mean_of(Metric::LowQualityPct, &bola),
                ),
                "%",
                0,
            ),
            arrow_delta(
                pct_delta(
                    mean_of(Metric::RebufferS, &cava),
                    mean_of(Metric::RebufferS, &bola),
                ),
                "%",
                0,
            ),
            arrow_delta(
                pct_delta(
                    mean_of(Metric::QualityChange, &cava),
                    mean_of(Metric::QualityChange, &bola),
                ),
                "%",
                0,
            ),
            arrow_delta(
                pct_delta(
                    mean_of(Metric::DataUsageMb, &cava),
                    mean_of(Metric::DataUsageMb, &bola),
                ),
                "%",
                0,
            ),
        ]);
    }
    csv.flush()?;
    print!("{table}");
    println!("paper: Q4 ↑10-21; low-qual ↓73-87%; stall ↓15-65%; qchg ↓24-45%; data ↑25-56%");
    println!("wrote {}", path.display());
    Ok(())
}
