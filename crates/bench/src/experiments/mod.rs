//! One module per paper table/figure. Each `run()` prints the experiment's
//! rows/series and writes CSV under [`crate::results_dir`].

pub mod exp_alloc_gate;
pub mod exp_bw_error;
pub mod exp_cap4x;
pub mod exp_chunk_duration;
pub mod exp_class_granularity;
pub mod exp_classification_proxy;
pub mod exp_codec_h265;
pub mod exp_config_robustness;
pub mod exp_live;
pub mod exp_offline_opt;
pub mod exp_oracle;
pub mod exp_outer_window;
pub mod exp_per_title;
pub mod exp_pia_vs_cava;
pub mod exp_population;
pub mod exp_serve_chaos;
pub mod exp_serve_soak;
pub mod exp_switch_penalty;
pub mod exp_vbr_vs_cbr;
pub mod fig01_bitrate_profile;
pub mod fig02_si_ti;
pub mod fig03_quality_cdf;
pub mod fig04_myopic;
pub mod fig06_target_preview;
pub mod fig07_inner_window;
pub mod fig08_scheme_comparison;
pub mod fig09_q13_quality;
pub mod fig10_ablation;
pub mod fig11_bola;
pub mod table1_youtube;
pub mod table2_bola_seg;

use std::io;

/// Registry of every experiment: `(id, description, entry point)`.
#[allow(clippy::type_complexity)]
pub fn registry() -> Vec<(&'static str, &'static str, fn() -> io::Result<()>)> {
    vec![
        (
            "fig01",
            "Per-chunk bitrates of a VBR video (Fig. 1)",
            fig01_bitrate_profile::run,
        ),
        (
            "fig02",
            "SI/TI by size-quartile class (Fig. 2)",
            fig02_si_ti::run,
        ),
        (
            "fig03",
            "Quality CDFs by chunk class (Fig. 3)",
            fig03_quality_cdf::run,
        ),
        (
            "fig04",
            "Myopic schemes vs CAVA timeline (Fig. 4)",
            fig04_myopic::run,
        ),
        (
            "fig06",
            "Dynamic target buffer vs chunk sizes (Fig. 6(b), measured)",
            fig06_target_preview::run,
        ),
        (
            "fig07",
            "Inner-controller window sweep (Fig. 7)",
            fig07_inner_window::run,
        ),
        (
            "outer_window",
            "Outer-controller window sweep (§6.2)",
            exp_outer_window::run,
        ),
        (
            "fig08",
            "Scheme comparison, 5 metric CDFs (Fig. 8)",
            fig08_scheme_comparison::run,
        ),
        (
            "fig09",
            "Q1-Q3 and all-chunk quality CDFs (Fig. 9)",
            fig09_q13_quality::run,
        ),
        (
            "fig10",
            "Design-principle ablation (Fig. 10)",
            fig10_ablation::run,
        ),
        (
            "fig11",
            "CAVA vs BOLA-E variants (Fig. 11)",
            fig11_bola::run,
        ),
        (
            "table1",
            "YouTube videos, LTE+FCC deltas (Table 1)",
            table1_youtube::run,
        ),
        (
            "table2",
            "CAVA vs BOLA-E (seg) (Table 2)",
            table2_bola_seg::run,
        ),
        ("codec", "H.265 codec impact (§6.5)", exp_codec_h265::run),
        (
            "cap4x",
            "4x-capped encoding: characterization (§3.3) + streaming (§6.6)",
            exp_cap4x::run,
        ),
        (
            "bw_error",
            "Bandwidth prediction error sweep (§6.7)",
            exp_bw_error::run,
        ),
        (
            "vbr_vs_cbr",
            "VBR vs CBR at the same average bitrate (§1 motivation, extension)",
            exp_vbr_vs_cbr::run,
        ),
        (
            "pia_vs_cava",
            "The CBR-to-VBR control lineage: PIA vs CAVA (§5.1, extension)",
            exp_pia_vs_cava::run,
        ),
        (
            "live",
            "Live VBR streaming with head-start sweep (§8 future work, extension)",
            exp_live::run,
        ),
        (
            "switch_penalty",
            "Eq. 3 track-change penalty forms (§5.3 discussion, extension)",
            exp_switch_penalty::run,
        ),
        (
            "class_granularity",
            "K size classes instead of quartiles (§3.1.1, extension)",
            exp_class_granularity::run,
        ),
        (
            "oracle",
            "Perfect bandwidth prediction vs harmonic mean (§6.7 flip side, extension)",
            exp_oracle::run,
        ),
        (
            "chunk_duration",
            "Same content chunked at 1/2/5/10 s (§2, extension)",
            exp_chunk_duration::run,
        ),
        (
            "classification_proxy",
            "Size-based vs SI/TI classification: agreement and QoE (§3.1.1, extension)",
            exp_classification_proxy::run,
        ),
        (
            "config_robustness",
            "Startup latency, base target, PID gains (§6.1/§5.4 text)",
            exp_config_robustness::run,
        ),
        (
            "offline_opt",
            "Offline-optimal DP upper bound: remaining headroom (extension)",
            exp_offline_opt::run,
        ),
        (
            "per_title",
            "Fixed vs per-title encoding ladders (§2 refs, extension)",
            exp_per_title::run,
        ),
        (
            "serve_soak",
            "abr-serve soak: held fleet, decision parity, BENCH_serve.json (extension)",
            exp_serve_soak::run,
        ),
        (
            "serve_chaos",
            "abr-serve chaos soak: fault injection, parity must hold, BENCH_serve_chaos.json (extension)",
            exp_serve_chaos::run,
        ),
        (
            "population",
            "abr-pop population sweep: per-cohort QoE at scale, BENCH_population.json (extension)",
            exp_population::run,
        ),
        (
            "alloc_gate",
            "allocations per steady-state decision, exact-gated, BENCH_alloc.json (extension)",
            exp_alloc_gate::run,
        ),
    ]
}

/// Print a standard experiment banner.
pub(crate) fn banner(id: &str, title: &str) {
    println!();
    println!("==============================================================");
    println!("{id}: {title}");
    println!("==============================================================");
}

/// `(ours − theirs)` as a percentage of `theirs` — the paper's Table 1/2
/// convention.
pub(crate) fn pct_delta(ours: f64, theirs: f64) -> f64 {
    if theirs.abs() < 1e-12 {
        if ours.abs() < 1e-12 {
            0.0
        } else {
            f64::INFINITY.copysign(ours)
        }
    } else {
        100.0 * (ours - theirs) / theirs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_unique() {
        let reg = registry();
        assert_eq!(reg.len(), 31);
        let mut ids: Vec<&str> = reg.iter().map(|(id, _, _)| *id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 31);
    }

    #[test]
    fn pct_delta_basics() {
        assert_eq!(pct_delta(110.0, 100.0), 10.0);
        assert_eq!(pct_delta(50.0, 100.0), -50.0);
        assert_eq!(pct_delta(0.0, 0.0), 0.0);
        assert!(pct_delta(1.0, 0.0).is_infinite());
    }
}
