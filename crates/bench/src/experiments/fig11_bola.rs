//! Fig. 11 — the dash.js study (§6.8): CAVA against the three BOLA-E
//! variants (declared-average, declared-peak, and actual-segment-size
//! bitrate views) on Big Buck Bunny (YouTube, H.264) under LTE traces.
//!
//! Paper findings this reproduces: BOLA-E (peak) is the most conservative,
//! BOLA-E (avg) the most aggressive, BOLA-E (seg) in between but with the
//! heaviest quality oscillation ("simply plugging in the individual chunk
//! sizes is insufficient"); CAVA wins every metric except raw data usage.

use crate::engine;
use crate::experiments::banner;
use crate::harness::{metric_cdf, run_scheme, Metric, SchemeKind, TraceSet};
use crate::results_dir;
use abr_sim::PlayerConfig;
use sim_report::{AsciiChart, CsvWriter, Series, TextTable};
use std::io;

/// Run this experiment (registry entry point).
pub fn run() -> io::Result<()> {
    banner(
        "Fig. 11",
        "CAVA vs BOLA-E variants (BBB, YouTube, H.264, LTE)",
    );
    let video = engine::video("BBB-youtube-h264");
    let traces = engine::traces(TraceSet::Lte);
    let qoe = TraceSet::Lte.qoe_config();
    // §6.8 runs in dash.js: same startup threshold and buffer cap as the
    // simulation study, so the default player config applies.
    let player = PlayerConfig::default();

    let mut table = TextTable::new(vec![
        "scheme",
        "Q4 quality",
        "Q1-Q3 quality",
        "low-qual %",
        "rebuffer (s)",
        "qual change",
        "data (MB)",
    ]);
    let metrics = [
        (Metric::Q4Quality, "fig11a_q4_quality"),
        (Metric::Q13Quality, "fig11b_q13_quality"),
        (Metric::LowQualityPct, "fig11c_low_quality_pct"),
        (Metric::RebufferS, "fig11d_rebuffering"),
        (Metric::QualityChange, "fig11e_quality_change"),
        (Metric::DataUsageMb, "fig11f_data_usage"),
    ];
    let mut all_sessions = Vec::new();
    for scheme in SchemeKind::FIG11 {
        let sessions = run_scheme(scheme, &video, &traces, &qoe, &player);
        table.add_row(vec![
            scheme.name().to_string(),
            format!("{:.1}", crate::mean_of(Metric::Q4Quality, &sessions)),
            format!("{:.1}", crate::mean_of(Metric::Q13Quality, &sessions)),
            format!("{:.1}", crate::mean_of(Metric::LowQualityPct, &sessions)),
            format!("{:.1}", crate::mean_of(Metric::RebufferS, &sessions)),
            format!("{:.2}", crate::mean_of(Metric::QualityChange, &sessions)),
            format!("{:.0}", crate::mean_of(Metric::DataUsageMb, &sessions)),
        ]);
        all_sessions.push((scheme, sessions));
    }
    print!("{table}");
    println!("paper: CAVA wins all metrics except data usage; seg > avg > peak on oscillation;");
    println!("       peak view most conservative, avg most aggressive");

    for (metric, fname) in metrics {
        let path = results_dir().join(format!("{fname}.csv"));
        let mut csv = CsvWriter::create(&path, &["scheme", "value", "cdf"])?;
        for (scheme, sessions) in &all_sessions {
            let cdf = metric_cdf(metric, sessions);
            for (x, fx) in cdf.points_downsampled(100) {
                csv.write_str_row(&[scheme.name(), &format!("{x:.4}"), &format!("{fx:.4}")])?;
            }
        }
        csv.flush()?;
    }

    let mut chart = AsciiChart::new(
        "CDF of Q4 quality (c = CAVA, s = BOLA-E seg, p = peak)",
        80,
        16,
    )
    .x_label("Q4 quality (VMAF, phone)")
    .y_label("CDF");
    for (scheme, glyph) in [
        (SchemeKind::Cava, 'c'),
        (SchemeKind::BolaESeg, 's'),
        (SchemeKind::BolaEPeak, 'p'),
    ] {
        let sessions = &all_sessions
            .iter()
            .find(|(s, _)| *s == scheme)
            .expect("scheme in FIG11")
            .1;
        chart.add_series(Series::new(
            scheme.name(),
            glyph,
            metric_cdf(Metric::Q4Quality, sessions).points(),
        ));
    }
    print!("{chart}");
    println!("wrote {}", results_dir().join("fig11*.csv").display());
    Ok(())
}
