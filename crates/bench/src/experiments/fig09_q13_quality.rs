//! Fig. 9 — quality of Q1–Q3 chunks and of all chunks for the Fig. 8 runs.
//!
//! The paper's takeaway: CAVA's Q1–Q3 quality is *not* the highest (it
//! deliberately saves bandwidth on simple scenes) but it avoids low quality
//! for them too — the balance the differential-treatment principle aims at.

use crate::engine;
use crate::experiments::banner;
use crate::harness::{metric_cdf, Metric, SchemeKind};
use crate::results_dir;
use sim_report::{AsciiChart, CsvWriter, Series, TextTable};
use std::io;

/// Run this experiment (registry entry point).
pub fn run() -> io::Result<()> {
    banner(
        "Fig. 9",
        "Quality of Q1-Q3 chunks and all chunks (same runs as Fig. 8)",
    );
    let video = engine::video("ED-ffmpeg-h264");
    let grid = super::fig08_scheme_comparison::run_grid(&video);

    let mut table = TextTable::new(vec![
        "scheme",
        "Q1-Q3 quality (mean)",
        "Q1-Q3 p10",
        "all chunks (mean)",
        "all p10",
    ]);
    for (metric, fname) in [
        (Metric::Q13Quality, "fig09a_q13_quality"),
        (Metric::AllQuality, "fig09b_all_quality"),
    ] {
        let path = results_dir().join(format!("{fname}.csv"));
        let mut csv = CsvWriter::create(&path, &["scheme", "value", "cdf"])?;
        for scheme in SchemeKind::FIG8 {
            let cdf = metric_cdf(metric, &grid[&scheme]);
            for (x, fx) in cdf.points_downsampled(100) {
                csv.write_str_row(&[scheme.name(), &format!("{x:.4}"), &format!("{fx:.4}")])?;
            }
        }
        csv.flush()?;
    }
    for scheme in SchemeKind::FIG8 {
        let q13 = metric_cdf(Metric::Q13Quality, &grid[&scheme]);
        let all = metric_cdf(Metric::AllQuality, &grid[&scheme]);
        table.add_row(vec![
            scheme.name().to_string(),
            format!("{:.1}", q13.mean()),
            format!("{:.1}", q13.quantile(0.10)),
            format!("{:.1}", all.mean()),
            format!("{:.1}", all.quantile(0.10)),
        ]);
    }
    print!("{table}");
    println!("paper: CAVA's Q1-Q3 quality is moderate — neither the highest nor low");

    let mut chart = AsciiChart::new("CDF of Q1-Q3 chunk quality", 80, 16)
        .x_label("Q1-Q3 quality (VMAF, phone)")
        .y_label("CDF");
    for (scheme, glyph) in [
        (SchemeKind::Cava, 'c'),
        (SchemeKind::RobustMpc, 'R'),
        (SchemeKind::PandaMaxMin, 'p'),
    ] {
        let cdf = metric_cdf(Metric::Q13Quality, &grid[&scheme]);
        chart.add_series(Series::new(scheme.name(), glyph, cdf.points()));
    }
    print!("{chart}");
    println!("wrote {}", results_dir().join("fig09*.csv").display());
    Ok(())
}
