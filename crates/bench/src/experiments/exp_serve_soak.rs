//! Serving-layer soak (extension) — throughput and latency of the
//! `abr-serve` decision service under a held fleet.
//!
//! Boots an in-process TCP server (worker pool ≥ 4 threads), then drives
//! [`SOAK_SESSIONS`] simulated players at it in **hold** mode: every
//! session opens before any decision is made, so the store really holds
//! the whole fleet concurrently. Parity checking stays on — each served
//! session is replayed in-process and must compare equal — so the numbers
//! below are for *provably correct* service, not a fast-but-wrong path.
//!
//! Emits `BENCH_serve.json` at the repo top level (sessions/sec,
//! decisions/sec, p50/p99 service latency from the journal's [`Stopwatch`]
//! authority) so the serving-layer perf trajectory is tracked from this
//! revision on, plus `results/exp_serve_soak.csv` with per-scheme rows.
//!
//! The run is also recorded to `results/serve_soak.replay` (docs/REPLAY.md)
//! and replayed before the bench is accepted: every recorded decision must
//! re-execute bit-identically.

use crate::engine;
use crate::experiments::banner;
use crate::harness::TraceSet;
use crate::journal::{self, Stopwatch};
use crate::results_dir;
use abr_serve::loadgen::{self, LoadgenConfig};
use abr_serve::replay::{self, Event, Recorder, ReplayPlayer};
use abr_serve::server::threads_from_env;
use abr_serve::store::StoreConfig;
use abr_serve::{Server, ServerConfig};
use abr_sim::metrics::evaluate;
use serde::{Deserialize, Serialize};
use sim_report::stats::percentile;
use sim_report::{CsvWriter, TextTable};
use std::collections::BTreeMap;
use std::io;
use std::sync::Arc;
use std::thread;

/// Concurrent sessions the soak must sustain (acceptance floor: 200).
pub const SOAK_SESSIONS: usize = 200;

/// The summary document written to `BENCH_serve.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeBench {
    /// Sessions driven (all held concurrently).
    pub sessions: usize,
    /// Client connections carrying the fleet.
    pub connections: usize,
    /// Server worker threads.
    pub server_threads: usize,
    /// Total decisions served.
    pub decisions: u64,
    /// Fleet wall time in seconds (open → close of every session).
    pub wall_time_s: f64,
    /// Sessions completed per second of wall time.
    pub sessions_per_s: f64,
    /// Decisions served per second of wall time.
    pub decisions_per_s: f64,
    /// Median per-decision service latency (request out → decision in),
    /// milliseconds.
    pub latency_p50_ms: f64,
    /// 99th-percentile service latency, milliseconds.
    pub latency_p99_ms: f64,
    /// Sessions whose decisions were replayed in-process and compared.
    pub parity_checked: usize,
    /// Sessions whose remote decisions diverged from the replay (must
    /// be 0).
    pub parity_mismatches: usize,
    /// Sessions admitted in degraded (stateless RBA) mode (0 here — the
    /// store is sized for the fleet).
    pub degraded_sessions: usize,
    /// Server-side peak concurrent sessions (must equal `sessions`).
    pub peak_sessions: u64,
    /// Server-side wire-level errors (must be 0).
    pub protocol_errors: u64,
    /// Events recorded to `results/serve_soak.replay` (RunEnd included).
    pub replay_events: u64,
    /// Whether the recorded log replayed to bit-identical decisions (must
    /// be true — the run fails otherwise).
    pub replay_verified: bool,
}

/// Run this experiment (registry entry point).
pub fn run() -> io::Result<()> {
    banner("serve_soak", "abr-serve soak: held fleet with parity on");
    let threads = threads_from_env().max(4);
    let connections = threads.min(8);
    let server_config = ServerConfig {
        threads,
        queue_depth: 64,
        store: StoreConfig {
            // Sized for the fleet: the soak measures full-service
            // throughput, not the degraded path.
            capacity: SOAK_SESSIONS.max(StoreConfig::default().capacity),
            idle_ticks: u64::MAX,
            ..StoreConfig::default()
        },
        ..ServerConfig::default()
    };
    // Shared recorder: server and client events interleave into one
    // canonical log under results/.
    let replay_path = results_dir().join("serve_soak.replay");
    let recorder = Arc::new(Recorder::to_file(&replay_path)?);
    recorder.record(&Event::RunMeta {
        label: "bench serve_soak".into(),
        seed: 42,
    });
    let bound = Server::bind_recorded(
        "127.0.0.1:0",
        server_config,
        engine::serve_provider(),
        Some(recorder.clone()),
    )?;
    let addr = bound.addr();
    let server = thread::spawn(move || bound.serve());

    let config = LoadgenConfig {
        sessions: SOAK_SESSIONS,
        connections,
        seed: 42,
        schemes: vec!["cava".into(), "bola".into(), "rba".into()],
        hold: true,
        parity: true,
        ..LoadgenConfig::default()
    };
    let provider = engine::serve_provider();
    let watch = Stopwatch::start();
    let now = move || watch.seconds();
    eprintln!(
        "soaking {addr} with {SOAK_SESSIONS} held sessions over {connections} connections..."
    );
    let report = loadgen::run_recorded(addr, &config, &provider, &now, Some(recorder.clone()))
        .map_err(io::Error::other)?;
    loadgen::shutdown_server(addr).map_err(io::Error::other)?;
    let stats = server
        .join()
        .map_err(|_| io::Error::other("server thread panicked"))?;
    let replay_events = recorder.finish().map_err(io::Error::other)?;

    // Replay the artifact before accepting the run.
    let log = replay::read_log(&replay_path).map_err(io::Error::other)?;
    let mut player = ReplayPlayer::new(log, engine::serve_provider());
    player.run_to_end();
    if let Some(divergence) = player.divergences().first() {
        return Err(io::Error::other(format!(
            "soak replay diverged ({} total): {divergence}",
            player.divergences().len()
        )));
    }
    let summary = player.summary();
    eprintln!(
        "replay verified: {} events, {} decisions re-executed bit-identically",
        summary.events, summary.decisions
    );

    let errors = report.errors();
    if let Some((id, error)) = errors.first() {
        return Err(io::Error::other(format!(
            "{} soak sessions errored; first: session {id}: {error}",
            errors.len()
        )));
    }
    let mismatches = report.parity_mismatches();
    if !mismatches.is_empty() {
        return Err(io::Error::other(format!(
            "decision parity broken for {} sessions",
            mismatches.len()
        )));
    }

    let wall = report.wall_time_s.max(f64::MIN_POSITIVE);
    let latencies = report.latencies();
    let bench = ServeBench {
        sessions: report.outcomes.len(),
        connections,
        server_threads: threads,
        decisions: report.decisions(),
        wall_time_s: report.wall_time_s,
        sessions_per_s: report.outcomes.len() as f64 / wall,
        decisions_per_s: report.decisions() as f64 / wall,
        latency_p50_ms: percentile(&latencies, 50.0).unwrap_or(0.0) * 1e3,
        latency_p99_ms: percentile(&latencies, 99.0).unwrap_or(0.0) * 1e3,
        parity_checked: report
            .outcomes
            .iter()
            .filter(|o| o.parity.is_some())
            .count(),
        parity_mismatches: mismatches.len(),
        degraded_sessions: report.degraded_sessions(),
        peak_sessions: stats.peak_sessions,
        protocol_errors: stats.protocol_errors,
        replay_events,
        replay_verified: true,
    };

    // Per-scheme breakdown: service latency plus the QoE the served fleet
    // actually delivered (journaled like every other experiment).
    let qoe = TraceSet::Lte.qoe_config();
    let mut by_scheme: BTreeMap<(String, String), Vec<&loadgen::SessionOutcome>> = BTreeMap::new();
    for outcome in &report.outcomes {
        by_scheme
            .entry((outcome.plan.scheme.clone(), outcome.plan.video.clone()))
            .or_default()
            .push(outcome);
    }
    let path = results_dir().join("exp_serve_soak.csv");
    let mut csv = CsvWriter::create(
        &path,
        &[
            "scheme",
            "sessions",
            "decisions",
            "latency_p50_ms",
            "latency_p99_ms",
            "mean_quality",
            "mean_rebuf_s",
        ],
    )?;
    let mut table = TextTable::new(vec![
        "scheme",
        "sessions",
        "decisions",
        "p50 (ms)",
        "p99 (ms)",
        "quality",
        "rebuf (s)",
    ]);
    for ((scheme_name, video_name), outcomes) in &by_scheme {
        let video = engine::video(video_name);
        let mut lat: Vec<f64> = Vec::new();
        let mut decisions = 0u64;
        let mut quality = 0.0;
        let mut rebuf = 0.0;
        for outcome in outcomes {
            lat.extend_from_slice(&outcome.latencies_s);
            decisions += outcome.latencies_s.len() as u64;
            if let Some(session) = &outcome.result {
                let m = evaluate(session, &video, &video.classification, &qoe);
                quality += m.all_quality_mean;
                rebuf += m.rebuffer_s;
            }
        }
        let n = outcomes.len() as f64;
        let p50 = percentile(&lat, 50.0).unwrap_or(0.0) * 1e3;
        let p99 = percentile(&lat, 99.0).unwrap_or(0.0) * 1e3;
        journal::note_scheme_run(
            scheme_name,
            video_name,
            outcomes.len(),
            quality / n,
            rebuf / n,
        );
        table.add_row(vec![
            scheme_name.clone(),
            outcomes.len().to_string(),
            decisions.to_string(),
            format!("{p50:.3}"),
            format!("{p99:.3}"),
            format!("{:.1}", quality / n),
            format!("{:.2}", rebuf / n),
        ]);
        csv.write_str_row(&[
            scheme_name,
            &outcomes.len().to_string(),
            &decisions.to_string(),
            &format!("{p50:.4}"),
            &format!("{p99:.4}"),
            &format!("{:.2}", quality / n),
            &format!("{:.2}", rebuf / n),
        ])?;
    }
    csv.flush()?;
    print!("{table}");

    let bench_path = std::path::PathBuf::from("BENCH_serve.json");
    let json = serde_json::to_string_pretty(&bench).map_err(io::Error::other)?;
    std::fs::write(&bench_path, json)?;
    println!(
        "{} sessions held concurrently (peak {}), {} decisions in {:.2}s",
        bench.sessions, bench.peak_sessions, bench.decisions, bench.wall_time_s
    );
    println!(
        "{:.1} sessions/s, {:.0} decisions/s, latency p50 {:.3} ms / p99 {:.3} ms",
        bench.sessions_per_s, bench.decisions_per_s, bench.latency_p50_ms, bench.latency_p99_ms
    );
    println!(
        "parity: {} checked, {} mismatches; {} degraded; {} protocol errors",
        bench.parity_checked,
        bench.parity_mismatches,
        bench.degraded_sessions,
        bench.protocol_errors
    );
    println!("wrote {}", path.display());
    println!("wrote {}", bench_path.display());
    println!(
        "wrote {} ({} events; verify with `cava replay`)",
        replay_path.display(),
        bench.replay_events
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bench_document_round_trips_through_json() {
        let bench = ServeBench {
            sessions: 200,
            connections: 8,
            server_threads: 8,
            decisions: 24_000,
            wall_time_s: 3.5,
            sessions_per_s: 57.1,
            decisions_per_s: 6857.1,
            latency_p50_ms: 0.125,
            latency_p99_ms: 1.25,
            parity_checked: 200,
            parity_mismatches: 0,
            degraded_sessions: 0,
            peak_sessions: 200,
            protocol_errors: 0,
            replay_events: 20_000,
            replay_verified: true,
        };
        let json = serde_json::to_string_pretty(&bench).unwrap();
        let back: ServeBench = serde_json::from_str(&json).unwrap();
        assert_eq!(back, bench);
        for key in [
            "\"sessions_per_s\"",
            "\"decisions_per_s\"",
            "\"latency_p50_ms\"",
            "\"latency_p99_ms\"",
            "\"parity_mismatches\"",
            "\"replay_events\"",
            "\"replay_verified\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
    }

    #[test]
    fn engine_provider_rejects_unknown_and_memoizes() {
        let provider = engine::serve_provider();
        assert!(provider("no-such-video").is_none());
        let a = provider("ED-youtube-h264").unwrap();
        let b = provider("ED-youtube-h264").unwrap();
        assert!(Arc::ptr_eq(&a.video, &b.video));
        assert_eq!(a.manifest.n_chunks(), a.video.n_chunks());
    }
}
