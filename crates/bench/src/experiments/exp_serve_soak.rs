//! Serving-layer soak (extension) — throughput and latency of the
//! `abr-serve` decision service, in two phases.
//!
//! **Phase 1 (smoke, recorded):** boots an in-process TCP server and drives
//! [`SMOKE_SESSIONS`] simulated players at it in **hold** mode with full
//! parity checking and a shared CAVR recorder. The run is recorded to
//! `results/serve_soak.replay` (docs/REPLAY.md) and replayed before the
//! bench is accepted: every recorded decision must re-execute
//! bit-identically. Per-scheme service latency and delivered QoE go to
//! `results/exp_serve_soak.csv` and the run journal.
//!
//! **Phase 2 (scale, pipelined):** a fresh reactor-backed server holds
//! [`scale_sessions`] sessions at once (default 100 000, override with
//! `ABR_SOAK_SESSIONS`) while every connection drives decisions in batched
//! waves of [`SCALE_PIPELINE`] frames per flush. Parity replays are sampled
//! (`parity_every`) so correctness stays continuously spot-checked at
//! scale. The headline `decisions_per_s` is decisions over the barrier-to-
//! barrier drive window (`drive_wall_s`), with the whole fleet held — the
//! open/close ramps are excluded, the per-decision simulation work is not.
//!
//! Emits `BENCH_serve.json` at the repo top level: scale-phase numbers at
//! the root (the serving-layer perf trajectory the bench gate tracks) and
//! the smoke-phase numbers nested under `"smoke"`. Latency percentiles in
//! the scale phase are per-decision *wave* RTTs: each decision in a batch
//! of up to [`SCALE_PIPELINE`] shares its wave's flush-to-drain time.

use crate::engine;
use crate::experiments::banner;
use crate::harness::TraceSet;
use crate::journal::{self, Stopwatch};
use crate::results_dir;
use abr_serve::loadgen::{self, LoadgenConfig};
use abr_serve::replay::{self, Event, Recorder, ReplayPlayer};
use abr_serve::server::threads_from_env;
use abr_serve::store::StoreConfig;
use abr_serve::{Server, ServerConfig};
use abr_sim::metrics::evaluate;
use serde::{Deserialize, Serialize};
use sim_report::stats::percentile;
use sim_report::{CsvWriter, TextTable};
use std::collections::BTreeMap;
use std::io;
use std::sync::Arc;
use std::thread;

/// Concurrent sessions the recorded smoke phase holds.
pub const SMOKE_SESSIONS: usize = 200;

/// Concurrent sessions the scale phase holds unless [`SCALE_SESSIONS_ENV`]
/// overrides it (acceptance floor for the reactor backend: 100k held).
pub const SCALE_SESSIONS_DEFAULT: usize = 100_000;

/// Environment override for the scale-phase session count.
pub const SCALE_SESSIONS_ENV: &str = "ABR_SOAK_SESSIONS";

/// Decisions batched per flush on each connection in the scale phase.
pub const SCALE_PIPELINE: usize = 512;

/// Scale-phase session count: [`SCALE_SESSIONS_ENV`] if set and parseable,
/// else [`SCALE_SESSIONS_DEFAULT`].
pub fn scale_sessions() -> usize {
    std::env::var(SCALE_SESSIONS_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(SCALE_SESSIONS_DEFAULT)
        .max(1)
}

/// Smoke-phase summary, nested under `"smoke"` in `BENCH_serve.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmokeBench {
    /// Sessions driven (all held concurrently).
    pub sessions: usize,
    /// Client connections carrying the fleet.
    pub connections: usize,
    /// Total decisions served.
    pub decisions: u64,
    /// Fleet wall time in seconds (open → close of every session).
    pub wall_time_s: f64,
    /// Decisions served per second of wall time (serial round trips).
    pub decisions_per_s: f64,
    /// Median per-decision service latency (request out → decision in),
    /// milliseconds.
    pub latency_p50_ms: f64,
    /// 99th-percentile service latency, milliseconds.
    pub latency_p99_ms: f64,
    /// Sessions whose decisions were replayed in-process and compared
    /// (all of them in the smoke phase).
    pub parity_checked: usize,
    /// Sessions whose remote decisions diverged from the replay (must
    /// be 0).
    pub parity_mismatches: usize,
    /// Events recorded to `results/serve_soak.replay` (RunEnd included).
    pub replay_events: u64,
    /// Whether the recorded log replayed to bit-identical decisions (must
    /// be true — the run fails otherwise).
    pub replay_verified: bool,
}

/// The summary document written to `BENCH_serve.json`. Root fields are the
/// scale phase; the recorded smoke phase nests under `smoke`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeBench {
    /// Sessions driven in the scale phase (all held concurrently).
    pub sessions: usize,
    /// Client connections carrying the scale fleet.
    pub connections: usize,
    /// Server worker threads.
    pub server_threads: usize,
    /// Decisions batched per flush on each connection.
    pub pipeline: usize,
    /// Every how-many-th session gets a full in-process parity replay.
    pub parity_every: u64,
    /// Total decisions served in the scale phase.
    pub decisions: u64,
    /// Fleet wall time in seconds (open → close of every session).
    pub wall_time_s: f64,
    /// Widest barrier-to-barrier drive window across client threads,
    /// seconds — the denominator of `decisions_per_s`.
    pub drive_wall_s: f64,
    /// Server-confirmed concurrent sessions sampled at the hold barrier
    /// (must be ≥ `sessions`).
    pub held_sessions: u64,
    /// Sessions completed per second of wall time.
    pub sessions_per_s: f64,
    /// Decisions served per second of drive time, whole fleet held.
    pub decisions_per_s: f64,
    /// Median per-decision wave RTT, milliseconds.
    pub latency_p50_ms: f64,
    /// 99th-percentile per-decision wave RTT, milliseconds.
    pub latency_p99_ms: f64,
    /// Sessions parity-replayed in-process (sampled via `parity_every`).
    pub parity_checked: usize,
    /// Sampled sessions whose remote decisions diverged (must be 0).
    pub parity_mismatches: usize,
    /// Sessions admitted in degraded (stateless RBA) mode (0 here — the
    /// store is sized for the fleet).
    pub degraded_sessions: usize,
    /// Server-side peak concurrent sessions (must be ≥ `sessions`).
    pub peak_sessions: u64,
    /// Server-side wire-level errors (must be 0).
    pub protocol_errors: u64,
    /// The recorded + replay-verified smoke phase.
    pub smoke: SmokeBench,
}

/// Phase 1: the recorded, fully parity-checked smoke fleet.
fn run_smoke(threads: usize) -> io::Result<SmokeBench> {
    let connections = threads.min(8);
    let server_config = ServerConfig {
        threads,
        queue_depth: 64,
        store: StoreConfig {
            capacity: SMOKE_SESSIONS.max(StoreConfig::default().capacity),
            idle_ticks: u64::MAX,
            ..StoreConfig::default()
        },
        ..ServerConfig::default()
    };
    // Shared recorder: server and client events interleave into one
    // canonical log under results/.
    let replay_path = results_dir().join("serve_soak.replay");
    let recorder = Arc::new(Recorder::to_file(&replay_path)?);
    recorder.record(&Event::RunMeta {
        label: "bench serve_soak".into(),
        seed: 42,
    });
    let bound = Server::bind_recorded(
        "127.0.0.1:0",
        server_config,
        engine::serve_provider(),
        Some(recorder.clone()),
    )?;
    let addr = bound.addr();
    let server = thread::spawn(move || bound.serve());

    let config = LoadgenConfig {
        sessions: SMOKE_SESSIONS,
        connections,
        seed: 42,
        schemes: vec!["cava".into(), "bola".into(), "rba".into()],
        hold: true,
        parity: true,
        ..LoadgenConfig::default()
    };
    let provider = engine::serve_provider();
    let watch = Stopwatch::start();
    let now = move || watch.seconds();
    eprintln!(
        "smoke: {addr} with {SMOKE_SESSIONS} held sessions over {connections} connections..."
    );
    let report = loadgen::run_recorded(addr, &config, &provider, &now, Some(recorder.clone()))
        .map_err(io::Error::other)?;
    loadgen::shutdown_server(addr).map_err(io::Error::other)?;
    server
        .join()
        .map_err(|_| io::Error::other("server thread panicked"))?;
    let replay_events = recorder.finish().map_err(io::Error::other)?;

    // Replay the artifact before accepting the run.
    let log = replay::read_log(&replay_path).map_err(io::Error::other)?;
    let mut player = ReplayPlayer::new(log, engine::serve_provider());
    player.run_to_end();
    if let Some(divergence) = player.divergences().first() {
        return Err(io::Error::other(format!(
            "smoke replay diverged ({} total): {divergence}",
            player.divergences().len()
        )));
    }
    let summary = player.summary();
    eprintln!(
        "replay verified: {} events, {} decisions re-executed bit-identically",
        summary.events, summary.decisions
    );

    let errors = report.errors();
    if let Some((id, error)) = errors.first() {
        return Err(io::Error::other(format!(
            "{} smoke sessions errored; first: session {id}: {error}",
            errors.len()
        )));
    }
    let mismatches = report.parity_mismatches();
    if !mismatches.is_empty() {
        return Err(io::Error::other(format!(
            "decision parity broken for {} smoke sessions",
            mismatches.len()
        )));
    }

    // Per-scheme breakdown: service latency plus the QoE the served fleet
    // actually delivered (journaled like every other experiment).
    let qoe = TraceSet::Lte.qoe_config();
    let mut by_scheme: BTreeMap<(String, String), Vec<&loadgen::SessionOutcome>> = BTreeMap::new();
    for outcome in &report.outcomes {
        by_scheme
            .entry((outcome.plan.scheme.clone(), outcome.plan.video.clone()))
            .or_default()
            .push(outcome);
    }
    let path = results_dir().join("exp_serve_soak.csv");
    let mut csv = CsvWriter::create(
        &path,
        &[
            "scheme",
            "sessions",
            "decisions",
            "latency_p50_ms",
            "latency_p99_ms",
            "mean_quality",
            "mean_rebuf_s",
        ],
    )?;
    let mut table = TextTable::new(vec![
        "scheme",
        "sessions",
        "decisions",
        "p50 (ms)",
        "p99 (ms)",
        "quality",
        "rebuf (s)",
    ]);
    for ((scheme_name, video_name), outcomes) in &by_scheme {
        let video = engine::video(video_name);
        let mut lat: Vec<f64> = Vec::new();
        let mut decisions = 0u64;
        let mut quality = 0.0;
        let mut rebuf = 0.0;
        for outcome in outcomes {
            lat.extend_from_slice(&outcome.latencies_s);
            decisions += outcome.latencies_s.len() as u64;
            if let Some(session) = &outcome.result {
                let m = evaluate(session, &video, &video.classification, &qoe);
                quality += m.all_quality_mean;
                rebuf += m.rebuffer_s;
            }
        }
        let n = outcomes.len() as f64;
        let p50 = percentile(&lat, 50.0).unwrap_or(0.0) * 1e3;
        let p99 = percentile(&lat, 99.0).unwrap_or(0.0) * 1e3;
        journal::note_scheme_run(
            scheme_name,
            video_name,
            outcomes.len(),
            quality / n,
            rebuf / n,
        );
        table.add_row(vec![
            scheme_name.clone(),
            outcomes.len().to_string(),
            decisions.to_string(),
            format!("{p50:.3}"),
            format!("{p99:.3}"),
            format!("{:.1}", quality / n),
            format!("{:.2}", rebuf / n),
        ]);
        csv.write_str_row(&[
            scheme_name,
            &outcomes.len().to_string(),
            &decisions.to_string(),
            &format!("{p50:.4}"),
            &format!("{p99:.4}"),
            &format!("{:.2}", quality / n),
            &format!("{:.2}", rebuf / n),
        ])?;
    }
    csv.flush()?;
    print!("{table}");
    println!("wrote {}", path.display());
    println!(
        "wrote {} ({} events; verify with `cava replay`)",
        replay_path.display(),
        replay_events
    );

    let wall = report.wall_time_s.max(f64::MIN_POSITIVE);
    let latencies = report.latencies();
    Ok(SmokeBench {
        sessions: report.outcomes.len(),
        connections,
        decisions: report.decisions(),
        wall_time_s: report.wall_time_s,
        decisions_per_s: report.decisions() as f64 / wall,
        latency_p50_ms: percentile(&latencies, 50.0).unwrap_or(0.0) * 1e3,
        latency_p99_ms: percentile(&latencies, 99.0).unwrap_or(0.0) * 1e3,
        parity_checked: report
            .outcomes
            .iter()
            .filter(|o| o.parity.is_some())
            .count(),
        parity_mismatches: mismatches.len(),
        replay_events,
        replay_verified: true,
    })
}

/// Phase 2: the pipelined scale fleet — held sessions and drive-window
/// throughput are the headline numbers.
fn run_scale(threads: usize, smoke: SmokeBench) -> io::Result<ServeBench> {
    let sessions = scale_sessions();
    let connections = threads.min(4);
    // Sample roughly 64 sessions for in-process parity replay; at small
    // override scales just check everything.
    let parity_every = (sessions as u64 / 64).max(1);
    let server_config = ServerConfig {
        threads,
        queue_depth: 64,
        // Generous deadlines: a held connection legitimately idles while
        // its peers finish their open ramp.
        read_deadline_ms: 60_000,
        write_deadline_ms: 60_000,
        store: StoreConfig {
            capacity: sessions.max(StoreConfig::default().capacity),
            idle_ticks: u64::MAX,
            ..StoreConfig::default()
        },
        ..ServerConfig::default()
    };
    let bound = Server::bind("127.0.0.1:0", server_config, engine::serve_provider())?;
    let addr = bound.addr();
    let server = thread::spawn(move || bound.serve());

    let config = LoadgenConfig {
        sessions,
        connections,
        seed: 42,
        schemes: vec!["cava".into(), "bola".into(), "rba".into()],
        hold: true,
        parity: true,
        parity_every,
        pipeline: SCALE_PIPELINE,
        ..LoadgenConfig::default()
    };
    let provider = engine::serve_provider();
    let watch = Stopwatch::start();
    let now = move || watch.seconds();
    eprintln!(
        "scale: {addr} holding {sessions} sessions over {connections} connections, \
         {SCALE_PIPELINE} decisions per flush..."
    );
    let report = loadgen::run(addr, &config, &provider, &now).map_err(io::Error::other)?;
    loadgen::shutdown_server(addr).map_err(io::Error::other)?;
    let stats = server
        .join()
        .map_err(|_| io::Error::other("server thread panicked"))?;

    let errors = report.errors();
    if let Some((id, error)) = errors.first() {
        return Err(io::Error::other(format!(
            "{} scale sessions errored; first: session {id}: {error}",
            errors.len()
        )));
    }
    let mismatches = report.parity_mismatches();
    if !mismatches.is_empty() {
        return Err(io::Error::other(format!(
            "decision parity broken for {} sampled scale sessions",
            mismatches.len()
        )));
    }
    let held = report.held_sessions.unwrap_or(0);
    if held < sessions as u64 {
        return Err(io::Error::other(format!(
            "hold sample saw {held} concurrent sessions, wanted {sessions}"
        )));
    }
    if stats.peak_sessions < sessions as u64 {
        return Err(io::Error::other(format!(
            "server peak {} below fleet size {sessions}",
            stats.peak_sessions
        )));
    }

    let wall = report.wall_time_s.max(f64::MIN_POSITIVE);
    let drive = report.drive_wall_s.max(f64::MIN_POSITIVE);
    let latencies = report.latencies();
    Ok(ServeBench {
        sessions: report.outcomes.len(),
        connections,
        server_threads: threads,
        pipeline: SCALE_PIPELINE,
        parity_every,
        decisions: report.decisions(),
        wall_time_s: report.wall_time_s,
        drive_wall_s: report.drive_wall_s,
        held_sessions: held,
        sessions_per_s: report.outcomes.len() as f64 / wall,
        decisions_per_s: report.decisions() as f64 / drive,
        latency_p50_ms: percentile(&latencies, 50.0).unwrap_or(0.0) * 1e3,
        latency_p99_ms: percentile(&latencies, 99.0).unwrap_or(0.0) * 1e3,
        parity_checked: report
            .outcomes
            .iter()
            .filter(|o| o.parity.is_some())
            .count(),
        parity_mismatches: mismatches.len(),
        degraded_sessions: report.degraded_sessions(),
        peak_sessions: stats.peak_sessions,
        protocol_errors: stats.protocol_errors,
        smoke,
    })
}

/// Run this experiment (registry entry point).
pub fn run() -> io::Result<()> {
    banner(
        "serve_soak",
        "abr-serve soak: recorded smoke + pipelined scale hold",
    );
    let threads = threads_from_env().max(4);
    let smoke = run_smoke(threads)?;
    let bench = run_scale(threads, smoke)?;

    let bench_path = std::path::PathBuf::from("BENCH_serve.json");
    let json = serde_json::to_string_pretty(&bench).map_err(io::Error::other)?;
    std::fs::write(&bench_path, json)?;
    println!(
        "smoke: {} sessions, {} decisions, {:.0} decisions/s serial, p99 {:.3} ms, replay {} events",
        bench.smoke.sessions,
        bench.smoke.decisions,
        bench.smoke.decisions_per_s,
        bench.smoke.latency_p99_ms,
        bench.smoke.replay_events
    );
    println!(
        "scale: {} sessions held (server confirmed {}, peak {}), {} decisions in {:.2}s drive window",
        bench.sessions, bench.held_sessions, bench.peak_sessions, bench.decisions, bench.drive_wall_s
    );
    println!(
        "{:.1} sessions/s, {:.0} decisions/s, wave latency p50 {:.3} ms / p99 {:.3} ms",
        bench.sessions_per_s, bench.decisions_per_s, bench.latency_p50_ms, bench.latency_p99_ms
    );
    println!(
        "parity: {} sampled (1 in {}), {} mismatches; {} degraded; {} protocol errors",
        bench.parity_checked,
        bench.parity_every,
        bench.parity_mismatches,
        bench.degraded_sessions,
        bench.protocol_errors
    );
    println!("wrote {}", bench_path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sample_bench() -> ServeBench {
        ServeBench {
            sessions: 100_000,
            connections: 4,
            server_threads: 4,
            pipeline: 512,
            parity_every: 1_562,
            decisions: 12_000_000,
            wall_time_s: 60.0,
            drive_wall_s: 40.0,
            held_sessions: 100_000,
            sessions_per_s: 1_666.7,
            decisions_per_s: 300_000.0,
            latency_p50_ms: 1.5,
            latency_p99_ms: 4.0,
            parity_checked: 64,
            parity_mismatches: 0,
            degraded_sessions: 0,
            peak_sessions: 100_000,
            protocol_errors: 0,
            smoke: SmokeBench {
                sessions: 200,
                connections: 8,
                decisions: 24_000,
                wall_time_s: 0.4,
                decisions_per_s: 60_000.0,
                latency_p50_ms: 0.1,
                latency_p99_ms: 0.7,
                parity_checked: 200,
                parity_mismatches: 0,
                replay_events: 73_000,
                replay_verified: true,
            },
        }
    }

    #[test]
    fn bench_document_round_trips_through_json() {
        let bench = sample_bench();
        let json = serde_json::to_string_pretty(&bench).unwrap();
        let back: ServeBench = serde_json::from_str(&json).unwrap();
        assert_eq!(back, bench);
        for key in [
            "\"sessions_per_s\"",
            "\"decisions_per_s\"",
            "\"drive_wall_s\"",
            "\"held_sessions\"",
            "\"pipeline\"",
            "\"parity_every\"",
            "\"latency_p50_ms\"",
            "\"latency_p99_ms\"",
            "\"parity_mismatches\"",
            "\"smoke\"",
            "\"replay_events\"",
            "\"replay_verified\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
    }

    #[test]
    fn scale_session_count_env_override_and_default() {
        // Not set in the test environment: the default applies.
        assert_eq!(scale_sessions(), SCALE_SESSIONS_DEFAULT);
    }

    #[test]
    fn engine_provider_rejects_unknown_and_memoizes() {
        let provider = engine::serve_provider();
        assert!(provider("no-such-video").is_none());
        let a = provider("ED-youtube-h264").unwrap();
        let b = provider("ED-youtube-h264").unwrap();
        assert!(Arc::ptr_eq(&a.video, &b.video));
        assert_eq!(a.manifest.n_chunks(), a.video.n_chunks());
    }
}
