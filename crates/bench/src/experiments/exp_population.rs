//! Population-scale workload sweep (extension) — per-cohort QoE for a
//! seeded `abr-pop` viewer population, at scale, plus a served-fleet
//! phase over real sockets.
//!
//! **Sweep phase.** [`POP_SCALE`] seeded viewers (override with the
//! `POP_SCALE` environment variable; acceptance runs use 1,000,000) stream
//! through the in-process simulator on the engine's dynamic scheduler.
//! Every viewer carries its cohort's network regime (LTE/FCC/5G/satellite
//! trace generators), device VMAF model, live window, and lifecycle
//! overlay (seeks, abandonment). The per-cohort reduction is byte-identical
//! for any worker count — `results/exp_population.csv` is the witness the
//! determinism tests and `scripts/check.sh` compare.
//!
//! **Serve phase.** A small slice of the same population drives the
//! `abr-serve` decision service over real TCP with parity checking on, so
//! the emitted `BENCH_population.json` tracks both sweep throughput
//! (sessions/sec) and serving throughput (decisions/sec, p50/p99 service
//! latency) from this revision on.

use crate::engine;
use crate::experiments::banner;
use crate::journal::{self, Stopwatch};
use crate::population::{self, CohortSummary, CSV_HEADER};
use crate::results_dir;
use abr_pop::PopConfig;
use abr_serve::loadgen::{self, LoadgenConfig};
use abr_serve::server::threads_from_env;
use abr_serve::store::StoreConfig;
use abr_serve::{Server, ServerConfig};
use serde::{Deserialize, Serialize};
use sim_report::stats::percentile;
use sim_report::{CohortBreakdown, CsvWriter};
use std::io;
use std::thread;

/// Default population size for the sweep phase. The acceptance runs use
/// the full million; `POP_SCALE` scales it down for smoke tests.
pub const POP_SCALE: usize = 1_000_000;

/// Sessions in the served-fleet phase (drives real sockets with parity).
pub const SERVE_SESSIONS: usize = 96;

/// The summary document written to `BENCH_population.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationBench {
    /// Population seed (fixes every arrival, cohort, trace, and lifecycle).
    pub seed: u64,
    /// Viewers swept through the in-process simulator.
    pub sessions: usize,
    /// Worker threads the sweep ran on.
    pub threads: usize,
    /// Sweep wall time in seconds.
    pub sweep_wall_s: f64,
    /// Simulated sessions completed per second of sweep wall time.
    pub sessions_per_s: f64,
    /// Sessions that abandoned mid-stream.
    pub abandoned: usize,
    /// Total mid-session seeks.
    pub seeks: usize,
    /// Total chunks streamed.
    pub chunks: u64,
    /// Per-cohort aggregates, in stable report order.
    pub cohorts: Vec<CohortSummary>,
    /// Sessions in the served-fleet phase.
    pub serve_sessions: usize,
    /// Decisions served over real sockets.
    pub serve_decisions: u64,
    /// Decisions served per second of serve-phase wall time.
    pub decisions_per_s: f64,
    /// Median per-decision service latency, milliseconds.
    pub latency_p50_ms: f64,
    /// 99th-percentile service latency, milliseconds.
    pub latency_p99_ms: f64,
    /// Served sessions whose decisions were replayed and compared.
    pub parity_checked: usize,
    /// Served sessions whose decisions diverged (must be 0).
    pub parity_mismatches: usize,
}

fn pop_config(sessions: usize) -> PopConfig {
    PopConfig {
        seed: 42,
        sessions,
        ..PopConfig::default()
    }
}

/// Run this experiment (registry entry point).
pub fn run() -> io::Result<()> {
    banner("population", "abr-pop sweep: per-cohort QoE at scale");
    let sessions = std::env::var("POP_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(POP_SCALE);
    let video = engine::video("ED-youtube-h264");
    let threads = engine::default_threads(sessions);

    eprintln!("sweeping {sessions} seeded viewers on {threads} threads...");
    let watch = Stopwatch::start();
    let cohorts = population::sweep(pop_config(sessions), &video, threads);
    let sweep_wall_s = watch.seconds();

    let abandoned: usize = cohorts.iter().map(|c| c.abandoned).sum();
    let seeks: usize = cohorts.iter().map(|c| c.seeks).sum();
    let chunks: u64 = cohorts.iter().map(|c| c.chunks).sum();

    let path = results_dir().join("exp_population.csv");
    let mut csv = CsvWriter::create(&path, &CSV_HEADER)?;
    let mut breakdown = CohortBreakdown::new(&[
        ("abandoned", 0),
        ("seeks", 0),
        ("quality", 1),
        ("low-q (%)", 1),
        ("rebuf (s)", 2),
        ("startup (s)", 2),
        ("watched (s)", 1),
    ]);
    for c in &cohorts {
        let row = population::csv_row(c);
        let fields: Vec<&str> = row.iter().map(String::as_str).collect();
        csv.write_str_row(&fields)?;
        breakdown.add(
            &c.cohort,
            c.sessions,
            &[
                c.abandoned as f64,
                c.seeks as f64,
                c.mean_quality,
                c.low_quality_pct,
                c.mean_rebuffer_s,
                c.mean_startup_s,
                c.mean_watched_s,
            ],
        );
        journal::note_scheme_run(
            &format!("CAVA [{}]", c.cohort),
            "ED-youtube-h264",
            c.sessions,
            c.mean_quality,
            c.mean_rebuffer_s,
        );
    }
    csv.flush()?;
    print!("{}", breakdown.to_table().render());

    // Serve phase: the same population model, over real sockets with
    // decision parity on.
    let server_threads = threads_from_env().max(4);
    let server_config = ServerConfig {
        threads: server_threads,
        queue_depth: 64,
        store: StoreConfig {
            capacity: SERVE_SESSIONS.max(StoreConfig::default().capacity),
            idle_ticks: u64::MAX,
            ..StoreConfig::default()
        },
        ..ServerConfig::default()
    };
    let bound = Server::bind("127.0.0.1:0", server_config, engine::serve_provider())?;
    let addr = bound.addr();
    let server = thread::spawn(move || bound.serve());
    let config = LoadgenConfig {
        population: Some(pop_config(SERVE_SESSIONS)),
        connections: server_threads.min(8),
        schemes: vec!["cava".into(), "bola".into(), "rba".into()],
        hold: false,
        parity: true,
        ..LoadgenConfig::default()
    };
    let provider = engine::serve_provider();
    let serve_watch = Stopwatch::start();
    let now = move || serve_watch.seconds();
    eprintln!("serving a {SERVE_SESSIONS}-viewer population slice at {addr}...");
    let report = loadgen::run(addr, &config, &provider, &now).map_err(io::Error::other)?;
    loadgen::shutdown_server(addr).map_err(io::Error::other)?;
    server
        .join()
        .map_err(|_| io::Error::other("server thread panicked"))?;

    let errors = report.errors();
    if let Some((id, error)) = errors.first() {
        return Err(io::Error::other(format!(
            "{} served population sessions errored; first: session {id}: {error}",
            errors.len()
        )));
    }
    let mismatches = report.parity_mismatches();
    if !mismatches.is_empty() {
        return Err(io::Error::other(format!(
            "decision parity broken for {} served population sessions",
            mismatches.len()
        )));
    }

    let latencies = report.latencies();
    let serve_wall = report.wall_time_s.max(f64::MIN_POSITIVE);
    let bench = PopulationBench {
        seed: 42,
        sessions,
        threads,
        sweep_wall_s,
        sessions_per_s: sessions as f64 / sweep_wall_s.max(f64::MIN_POSITIVE),
        abandoned,
        seeks,
        chunks,
        cohorts,
        serve_sessions: report.outcomes.len(),
        serve_decisions: report.decisions(),
        decisions_per_s: report.decisions() as f64 / serve_wall,
        latency_p50_ms: percentile(&latencies, 50.0).unwrap_or(0.0) * 1e3,
        latency_p99_ms: percentile(&latencies, 99.0).unwrap_or(0.0) * 1e3,
        parity_checked: report
            .outcomes
            .iter()
            .filter(|o| o.parity.is_some())
            .count(),
        parity_mismatches: mismatches.len(),
    };

    let bench_path = std::path::PathBuf::from("BENCH_population.json");
    let json = serde_json::to_string_pretty(&bench).map_err(io::Error::other)?;
    std::fs::write(&bench_path, json)?;
    println!(
        "{} viewers swept in {:.2}s ({:.0} sessions/s) on {} threads",
        bench.sessions, bench.sweep_wall_s, bench.sessions_per_s, bench.threads
    );
    println!(
        "{} abandoned, {} seeks, {} chunks across {} cohorts",
        bench.abandoned,
        bench.seeks,
        bench.chunks,
        bench.cohorts.len()
    );
    println!(
        "served slice: {} sessions, {:.0} decisions/s, p50 {:.3} ms / p99 {:.3} ms, parity {}/{}",
        bench.serve_sessions,
        bench.decisions_per_s,
        bench.latency_p50_ms,
        bench.latency_p99_ms,
        bench.parity_checked,
        bench.serve_sessions
    );
    println!("wrote {}", path.display());
    println!("wrote {}", bench_path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_document_round_trips_through_json() {
        let bench = PopulationBench {
            seed: 42,
            sessions: 1_000_000,
            threads: 8,
            sweep_wall_s: 120.0,
            sessions_per_s: 8_333.3,
            abandoned: 420_000,
            seeks: 150_000,
            chunks: 55_000_000,
            cohorts: vec![CohortSummary {
                cohort: "phone-lte".into(),
                sessions: 130_000,
                abandoned: 54_000,
                seeks: 20_000,
                chunks: 7_000_000,
                scored: 129_000,
                mean_quality: 71.5,
                low_quality_pct: 9.4,
                mean_rebuffer_s: 0.8,
                mean_startup_s: 1.9,
                mean_watched_s: 171.0,
            }],
            serve_sessions: 96,
            serve_decisions: 9_000,
            decisions_per_s: 4_500.0,
            latency_p50_ms: 0.2,
            latency_p99_ms: 1.4,
            parity_checked: 96,
            parity_mismatches: 0,
        };
        let json = serde_json::to_string_pretty(&bench).unwrap();
        let back: PopulationBench = serde_json::from_str(&json).unwrap();
        assert_eq!(back, bench);
        for key in [
            "\"sessions_per_s\"",
            "\"decisions_per_s\"",
            "\"latency_p99_ms\"",
            "\"cohorts\"",
            "\"parity_mismatches\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
    }
}
