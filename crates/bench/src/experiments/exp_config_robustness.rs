//! Configuration-robustness checks (§6.1/§5.4 text claims, measured):
//!
//! 1. **Startup latency** — the paper explores a range and reports 10 s
//!    because "results for other practical settings were similar".
//! 2. **Base target buffer** — §5.4: "we set it to 60 seconds …; setting it
//!    to 40 seconds leads to similar results".
//! 3. **PID gains** — §6.1: "we varied Kp and Ki, and confirmed that …
//!    a wide range of Kp and Ki values lead to good performance".

use crate::engine;
use crate::experiments::banner;
use crate::harness::{run_with_factory, Metric, TraceSet};
use crate::results_dir;
use abr_sim::PlayerConfig;
use cava_core::{Cava, CavaConfig};
use sim_report::{CsvWriter, TextTable};
use std::io;

/// Run this experiment (registry entry point).
pub fn run() -> io::Result<()> {
    banner(
        "ext: config robustness",
        "Startup latency, base target buffer, and PID gains (§6.1/§5.4)",
    );
    let video = engine::video("ED-ffmpeg-h264");
    let traces = engine::traces(TraceSet::Lte);
    let qoe = TraceSet::Lte.qoe_config();
    let path = results_dir().join("exp_config_robustness.csv");
    let mut csv = CsvWriter::create(&path, &["knob", "value", "q4", "all", "rebuf_s", "qchange"])?;

    // 1. Startup latency.
    let mut t1 = TextTable::new(vec![
        "startup (s)",
        "Q4 qual",
        "all qual",
        "rebuf (s)",
        "qual chg",
    ]);
    for startup in [5.0, 10.0, 20.0, 30.0] {
        let player = PlayerConfig {
            startup_threshold_s: startup,
            ..PlayerConfig::default()
        };
        let sessions = run_with_factory(
            &|| Box::new(Cava::paper_default()),
            &video,
            &traces,
            &qoe,
            &player,
        );
        // Sweep values are exact literals; tagging the paper's setting with
        // `==` is deliberate.
        #[allow(clippy::float_cmp)]
        let tag = if startup == 10.0 { " (paper)" } else { "" };
        t1.add_row(vec![
            format!("{startup:.0}{tag}"),
            format!("{:.1}", crate::mean_of(Metric::Q4Quality, &sessions)),
            format!("{:.1}", crate::mean_of(Metric::AllQuality, &sessions)),
            format!("{:.1}", crate::mean_of(Metric::RebufferS, &sessions)),
            format!("{:.2}", crate::mean_of(Metric::QualityChange, &sessions)),
        ]);
        csv.write_str_row(&[
            "startup_s",
            &format!("{startup}"),
            &format!("{:.2}", crate::mean_of(Metric::Q4Quality, &sessions)),
            &format!("{:.2}", crate::mean_of(Metric::AllQuality, &sessions)),
            &format!("{:.2}", crate::mean_of(Metric::RebufferS, &sessions)),
            &format!("{:.3}", crate::mean_of(Metric::QualityChange, &sessions)),
        ])?;
    }
    println!("startup latency (paper: 'results for other practical settings were similar'):");
    print!("{t1}");

    // 2. Base target buffer.
    let mut t2 = TextTable::new(vec![
        "x̄r (s)",
        "Q4 qual",
        "all qual",
        "rebuf (s)",
        "qual chg",
    ]);
    for base in [40.0, 60.0, 80.0] {
        let config = CavaConfig {
            base_target_buffer_s: base,
            ..CavaConfig::paper_default()
        };
        let sessions = run_with_factory(
            &move || Box::new(Cava::new(config)),
            &video,
            &traces,
            &qoe,
            &PlayerConfig::default(),
        );
        // Same exact-literal tagging as the startup sweep above.
        #[allow(clippy::float_cmp)]
        let tag = if base == 60.0 { " (paper)" } else { "" };
        t2.add_row(vec![
            format!("{base:.0}{tag}"),
            format!("{:.1}", crate::mean_of(Metric::Q4Quality, &sessions)),
            format!("{:.1}", crate::mean_of(Metric::AllQuality, &sessions)),
            format!("{:.1}", crate::mean_of(Metric::RebufferS, &sessions)),
            format!("{:.2}", crate::mean_of(Metric::QualityChange, &sessions)),
        ]);
        csv.write_str_row(&[
            "base_target_s",
            &format!("{base}"),
            &format!("{:.2}", crate::mean_of(Metric::Q4Quality, &sessions)),
            &format!("{:.2}", crate::mean_of(Metric::AllQuality, &sessions)),
            &format!("{:.2}", crate::mean_of(Metric::RebufferS, &sessions)),
            &format!("{:.3}", crate::mean_of(Metric::QualityChange, &sessions)),
        ])?;
    }
    println!("base target buffer (paper §5.4: '40 seconds leads to similar results'):");
    print!("{t2}");

    // 3. PID gain grid.
    let mut t3 = TextTable::new(vec![
        "Kp / Ki",
        "Q4 qual",
        "all qual",
        "rebuf (s)",
        "qual chg",
    ]);
    for (kp, ki) in [(0.01, 0.0005), (0.04, 0.0015), (0.08, 0.003), (0.16, 0.006)] {
        let config = CavaConfig {
            kp,
            ki,
            ..CavaConfig::paper_default()
        };
        let sessions = run_with_factory(
            &move || Box::new(Cava::new(config)),
            &video,
            &traces,
            &qoe,
            &PlayerConfig::default(),
        );
        // Same exact-literal tagging as the startup sweep above.
        #[allow(clippy::float_cmp)]
        let tag = if kp == 0.04 { " (default)" } else { "" };
        t3.add_row(vec![
            format!("{kp} / {ki}{tag}"),
            format!("{:.1}", crate::mean_of(Metric::Q4Quality, &sessions)),
            format!("{:.1}", crate::mean_of(Metric::AllQuality, &sessions)),
            format!("{:.1}", crate::mean_of(Metric::RebufferS, &sessions)),
            format!("{:.2}", crate::mean_of(Metric::QualityChange, &sessions)),
        ]);
        csv.write_str_row(&[
            "kp_ki",
            &format!("{kp}/{ki}"),
            &format!("{:.2}", crate::mean_of(Metric::Q4Quality, &sessions)),
            &format!("{:.2}", crate::mean_of(Metric::AllQuality, &sessions)),
            &format!("{:.2}", crate::mean_of(Metric::RebufferS, &sessions)),
            &format!("{:.3}", crate::mean_of(Metric::QualityChange, &sessions)),
        ])?;
    }
    println!(
        "PID gains (paper §6.1: 'a wide range of Kp and Ki values lead to good performance'):"
    );
    print!("{t3}");
    csv.flush()?;
    println!("wrote {}", path.display());
    Ok(())
}
