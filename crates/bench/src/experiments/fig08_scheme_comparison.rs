//! Fig. 8 — the main comparison: CAVA vs MPC, RobustMPC, and both PANDA/CQ
//! variants on Elephant Dream (FFmpeg, H.264) across the LTE traces, as
//! CDFs over the five §6.1 metrics (data usage is plotted relative to CAVA,
//! as in the paper's panel (e)).

use crate::engine::{self, PreparedVideo};
use crate::experiments::banner;
use crate::harness::{metric_cdf, Metric, SchemeKind, TraceSet};
use crate::results_dir;
use abr_sim::metrics::QoeMetrics;
use abr_sim::PlayerConfig;
use sim_report::{AsciiChart, Cdf, CsvWriter, Series, TextTable};
use std::collections::BTreeMap;
use std::io;

/// Run the Fig. 8 grid — all five schemes × all LTE traces as one flattened
/// task queue on the engine — and return per-scheme session metrics (shared
/// with Fig. 9, which plots different columns of the same runs). Ordered
/// map: iteration order is deterministic (abr-lint rule R2).
pub fn run_grid(video: &PreparedVideo) -> BTreeMap<SchemeKind, Vec<QoeMetrics>> {
    let traces = engine::traces(TraceSet::Lte);
    let qoe = TraceSet::Lte.qoe_config();
    let player = PlayerConfig::default();
    engine::run_grid(&SchemeKind::FIG8, video, &traces, &qoe, &player)
}

/// Run this experiment (registry entry point).
pub fn run() -> io::Result<()> {
    banner(
        "Fig. 8",
        "Performance comparison (ED, FFmpeg, H.264) under LTE traces",
    );
    let video = engine::video("ED-ffmpeg-h264");
    let grid = run_grid(&video);
    let cava = &grid[&SchemeKind::Cava];

    // Summary table over the five panels.
    let mut table = TextTable::new(vec![
        "scheme",
        "Q4 quality (mean)",
        "Q4 good % (>60)",
        "low-qual % (mean)",
        "traces w/o rebuf %",
        "rebuffer mean (s)",
        "qual change (mean)",
        "data rel CAVA (MB, mean)",
    ]);
    let cava_data: Vec<f64> = cava
        .iter()
        .map(|m| m.data_usage_bytes as f64 / 1.0e6)
        .collect();
    for scheme in SchemeKind::FIG8 {
        let sessions = &grid[&scheme];
        let no_rebuf =
            sessions.iter().filter(|m| m.rebuffer_s == 0.0).count() as f64 / sessions.len() as f64;
        let q4_good = sessions.iter().map(|m| m.q4_good_pct).sum::<f64>() / sessions.len() as f64;
        let rel_data: f64 = sessions
            .iter()
            .zip(&cava_data)
            .map(|(m, c)| m.data_usage_bytes as f64 / 1.0e6 - c)
            .sum::<f64>()
            / sessions.len() as f64;
        table.add_row(vec![
            scheme.name().to_string(),
            format!("{:.1}", crate::mean_of(Metric::Q4Quality, sessions)),
            format!("{q4_good:.0}%"),
            format!("{:.1}", crate::mean_of(Metric::LowQualityPct, sessions)),
            format!("{:.0}%", 100.0 * no_rebuf),
            format!("{:.1}", crate::mean_of(Metric::RebufferS, sessions)),
            format!("{:.2}", crate::mean_of(Metric::QualityChange, sessions)),
            format!("{rel_data:+.1}"),
        ]);
    }
    print!("{table}");
    println!("paper: CAVA leads on Q4 quality / rebuffering / quality change;");
    println!(
        "       85% of traces rebuffer-free under CAVA vs 20% (RobustMPC), 68% (PANDA max-min)"
    );

    // Statistical support (beyond the paper): paired sign tests and 95%
    // bootstrap CIs for CAVA's per-trace advantage.
    let cava_q4: Vec<f64> = cava.iter().map(|m| m.q4_quality_mean).collect();
    let cava_rebuf: Vec<f64> = cava.iter().map(|m| m.rebuffer_s).collect();
    let mut sig = TextTable::new(vec![
        "CAVA vs",
        "ΔQ4 95% CI",
        "ΔQ4 sign-test p",
        "Δrebuf 95% CI (s)",
        "Δrebuf sign-test p",
    ]);
    for scheme in SchemeKind::FIG8.iter().skip(1) {
        let other_q4: Vec<f64> = grid[scheme].iter().map(|m| m.q4_quality_mean).collect();
        let other_rebuf: Vec<f64> = grid[scheme].iter().map(|m| m.rebuffer_s).collect();
        let fmt_ci = |ci: Option<(f64, f64)>| match ci {
            Some((lo, hi)) => format!("[{lo:+.1}, {hi:+.1}]"),
            None => "-".to_string(),
        };
        let fmt_p = |p: Option<f64>| match p {
            Some(p) => format!("{p:.1e}"),
            None => "-".to_string(),
        };
        sig.add_row(vec![
            scheme.name().to_string(),
            fmt_ci(sim_report::stats::bootstrap_mean_diff_ci(
                &cava_q4, &other_q4, 0.95, 2000, 7,
            )),
            fmt_p(sim_report::stats::paired_sign_test(&cava_q4, &other_q4)),
            fmt_ci(sim_report::stats::bootstrap_mean_diff_ci(
                &cava_rebuf,
                &other_rebuf,
                0.95,
                2000,
                7,
            )),
            fmt_p(sim_report::stats::paired_sign_test(
                &cava_rebuf,
                &other_rebuf,
            )),
        ]);
    }
    print!("{sig}");
    println!("positive ΔQ4 / negative Δrebuf favor CAVA; CIs from 2000 paired bootstrap resamples");

    // CSVs: one file per panel with (scheme, value, cdf) rows.
    for (metric, fname) in [
        (Metric::Q4Quality, "fig08a_q4_quality"),
        (Metric::LowQualityPct, "fig08b_low_quality_pct"),
        (Metric::RebufferS, "fig08c_rebuffering"),
        (Metric::QualityChange, "fig08d_quality_change"),
    ] {
        let path = results_dir().join(format!("{fname}.csv"));
        let mut csv = CsvWriter::create(&path, &["scheme", "value", "cdf"])?;
        for scheme in SchemeKind::FIG8 {
            let cdf = metric_cdf(metric, &grid[&scheme]);
            for (x, fx) in cdf.points_downsampled(100) {
                csv.write_str_row(&[scheme.name(), &format!("{x:.4}"), &format!("{fx:.4}")])?;
            }
        }
        csv.flush()?;
    }
    // Panel (e): relative data usage.
    let path = results_dir().join("fig08e_relative_data_usage.csv");
    let mut csv = CsvWriter::create(&path, &["scheme", "value_mb", "cdf"])?;
    for scheme in SchemeKind::FIG8 {
        let rel: Vec<f64> = grid[&scheme]
            .iter()
            .zip(&cava_data)
            .map(|(m, c)| m.data_usage_bytes as f64 / 1.0e6 - c)
            .collect();
        let cdf = Cdf::new(&rel).expect("non-empty");
        for (x, fx) in cdf.points_downsampled(100) {
            csv.write_str_row(&[scheme.name(), &format!("{x:.4}"), &format!("{fx:.4}")])?;
        }
    }
    csv.flush()?;

    // ASCII: panel (a).
    let mut chart = AsciiChart::new("CDF of Q4 chunk quality", 80, 18)
        .x_label("Q4 quality (VMAF, phone)")
        .y_label("CDF");
    for (scheme, glyph) in [
        (SchemeKind::Cava, 'c'),
        (SchemeKind::RobustMpc, 'R'),
        (SchemeKind::PandaMaxMin, 'p'),
    ] {
        let cdf = metric_cdf(Metric::Q4Quality, &grid[&scheme]);
        chart.add_series(Series::new(scheme.name(), glyph, cdf.points()));
    }
    print!("{chart}");
    println!("wrote {}", results_dir().join("fig08*.csv").display());
    Ok(())
}
