//! §3.3 + §6.6 — the 4×-capped encoding of Elephant Dream (FFmpeg, H.264).
//!
//! Characterization (§3.3): even with a 4× cap, Q4 chunks stay clearly
//! below Q1–Q3 quality at the 480p track (paper's phone-model medians:
//! 79 vs 88/88/85) — complex scenes are *inherently* hard to encode.
//!
//! Streaming (§6.6): the same comparison as Fig. 8/Table 1 on the higher-
//! variability encoding — paper: CAVA's Q4 quality averages 65, 8 and 7
//! above RobustMPC and PANDA max-min; quality change 42 %/68 % lower;
//! rebuffering ≈90 % lower; low-quality chunks 39 %/57 % fewer.

use crate::engine;
use crate::experiments::{banner, pct_delta};
use crate::harness::{mean_of, run_scheme, Metric, SchemeKind, TraceSet};
use crate::results_dir;
use abr_sim::PlayerConfig;
use sim_report::table::arrow_delta;
use sim_report::{Cdf, CsvWriter, TextTable};
use std::io;
use vbr_video::classify::{ChunkClass, Classification};

/// Run this experiment (registry entry point).
pub fn run() -> io::Result<()> {
    banner("§3.3/§6.6", "4x-capped VBR: characterization and streaming");
    let video = engine::video("ED-ffmpeg-h264-cap4x");

    // ---- §3.3 characterization: 480p quality medians per class ----
    let classification = Classification::from_video(&video);
    let track = video.n_tracks() / 2;
    let mut table = TextTable::new(vec!["class", "median VMAF (phone)", "median VMAF (TV)"]);
    let path_q = results_dir().join("exp_cap4x_quality.csv");
    let mut csv_q = CsvWriter::create(&path_q, &["class", "median_phone", "median_tv"])?;
    for class in ChunkClass::ALL {
        let pos = classification.positions_of(class);
        let phone: Vec<f64> = pos
            .iter()
            .map(|&i| video.quality(track, i).vmaf_phone)
            .collect();
        let tv: Vec<f64> = pos
            .iter()
            .map(|&i| video.quality(track, i).vmaf_tv)
            .collect();
        let med = |xs: &[f64]| Cdf::new(xs).expect("non-empty").quantile(0.5);
        table.add_row(vec![
            class.label().to_string(),
            format!("{:.1}", med(&phone)),
            format!("{:.1}", med(&tv)),
        ]);
        csv_q.write_str_row(&[
            class.label(),
            &format!("{:.2}", med(&phone)),
            &format!("{:.2}", med(&tv)),
        ])?;
    }
    csv_q.flush()?;
    print!("{table}");
    println!("paper §3.3 (phone, 480p): Q1-Q3 ≈ 88/88/85, Q4 ≈ 79 — the gap persists at 4x");

    // ---- §6.6 streaming comparison ----
    let traces = engine::traces(TraceSet::Lte);
    let qoe = TraceSet::Lte.qoe_config();
    let player = PlayerConfig::default();
    let schemes = [
        SchemeKind::Cava,
        SchemeKind::RobustMpc,
        SchemeKind::PandaMaxMin,
    ];
    let results: Vec<_> = schemes
        .iter()
        .map(|&s| run_scheme(s, &video, &traces, &qoe, &player))
        .collect();
    let path = results_dir().join("exp_cap4x_streaming.csv");
    let mut csv = CsvWriter::create(
        &path,
        &["scheme", "q4", "low_pct", "rebuf_s", "qchange", "data_mb"],
    )?;
    let mut table = TextTable::new(vec![
        "scheme",
        "Q4 quality",
        "low-qual %",
        "rebuffer (s)",
        "qual change",
        "data (MB)",
    ]);
    for (scheme, sessions) in schemes.iter().zip(&results) {
        table.add_row(vec![
            scheme.name().to_string(),
            format!("{:.1}", mean_of(Metric::Q4Quality, sessions)),
            format!("{:.1}", mean_of(Metric::LowQualityPct, sessions)),
            format!("{:.1}", mean_of(Metric::RebufferS, sessions)),
            format!("{:.2}", mean_of(Metric::QualityChange, sessions)),
            format!("{:.0}", mean_of(Metric::DataUsageMb, sessions)),
        ]);
        csv.write_str_row(&[
            scheme.name(),
            &format!("{:.2}", mean_of(Metric::Q4Quality, sessions)),
            &format!("{:.2}", mean_of(Metric::LowQualityPct, sessions)),
            &format!("{:.2}", mean_of(Metric::RebufferS, sessions)),
            &format!("{:.3}", mean_of(Metric::QualityChange, sessions)),
            &format!("{:.1}", mean_of(Metric::DataUsageMb, sessions)),
        ])?;
    }
    csv.flush()?;
    print!("{table}");
    let d_q4 = |i: usize| {
        mean_of(Metric::Q4Quality, &results[0]) - mean_of(Metric::Q4Quality, &results[i])
    };
    let d = |m: Metric, i: usize| pct_delta(mean_of(m, &results[0]), mean_of(m, &results[i]));
    println!(
        "CAVA vs RobustMPC / PANDA max-min: Q4 {}, {}; qchg {}, {}; rebuf {}, {}; low-qual {}, {}",
        arrow_delta(d_q4(1), "", 0),
        arrow_delta(d_q4(2), "", 0),
        arrow_delta(d(Metric::QualityChange, 1), "%", 0),
        arrow_delta(d(Metric::QualityChange, 2), "%", 0),
        arrow_delta(d(Metric::RebufferS, 1), "%", 0),
        arrow_delta(d(Metric::RebufferS, 2), "%", 0),
        arrow_delta(d(Metric::LowQualityPct, 1), "%", 0),
        arrow_delta(d(Metric::LowQualityPct, 2), "%", 0),
    );
    println!("paper §6.6: Q4 65 (↑8, ↑7); qchg ↓42%, ↓68%; rebuf ↓90%, ↓89%; low-qual ↓39%, ↓57%");
    println!("wrote {} and {}", path_q.display(), path.display());
    Ok(())
}
