//! Per-title ladder optimization (extension) — completing §2's Netflix
//! reference \[11\]/\[29\].
//!
//! The paper's encodings follow Netflix's per-title procedure for the
//! *allocation* pass; real per-title encoding also chooses the *ladder
//! bitrates* per title: hard titles get higher track bitrates, easy titles
//! lower, so every title reaches similar quality at each ladder rung.
//!
//! The experiment uses a mixed-difficulty catalog — four titles with
//! absolute hardness 0.7–1.6 (the complexity process mean-normalizes every
//! title, so hardness is the explicit cross-title knob; see
//! [`vbr_video::video::Video::synthesize_with_hardness`]) — encoded twice:
//! fixed ladder vs per-title ladder (bitrates × hardness^θ, budget-neutral
//! across the catalog), both streamed with CAVA. Expected shape: per-title
//! narrows the quality spread across titles and lifts the hardest title at
//! roughly the same total bits.

use crate::engine;
use crate::experiments::banner;
use crate::harness::{mean_of, run_with_factory, Metric, TraceSet};
use crate::results_dir;
use abr_sim::PlayerConfig;
use cava_core::Cava;
use sim_report::{CsvWriter, TextTable};
use std::io;
use vbr_video::encoder::{EncoderConfig, EncoderSource};
use vbr_video::{Genre, Ladder, Video};

/// Hypothetical mixed catalog: `(name, genre, seed, absolute hardness)`.
const CONTENTS: [(&str, Genre, u64, f64); 4] = [
    ("easy-animation", Genre::Animation, 201, 0.7),
    ("typical-animal", Genre::Animal, 202, 1.0),
    ("hard-scifi", Genre::SciFi, 203, 1.3),
    ("extreme-action", Genre::Action, 204, 1.6),
];

/// Quality-need super-linearity θ (matches the quality model).
const THETA: f64 = 1.25;

/// Run this experiment (registry entry point).
pub fn run() -> io::Result<()> {
    banner(
        "ext: per-title",
        "Fixed vs per-title encoding ladders (§2 refs [11]/[29])",
    );
    let base = Ladder::ffmpeg_h264();
    let traces = engine::traces(TraceSet::Lte);
    let qoe = TraceSet::Lte.qoe_config();
    let player = PlayerConfig::default();

    // Per-title bitrate scale = hardness^θ, normalized so the catalog's
    // total bit budget matches the fixed-ladder catalog.
    let scales: Vec<f64> = CONTENTS.iter().map(|c| c.3.powf(THETA)).collect();
    let mean_scale = scales.iter().sum::<f64>() / scales.len() as f64;

    let path = results_dir().join("exp_per_title.csv");
    let mut csv = CsvWriter::create(
        &path,
        &[
            "content",
            "ladder",
            "difficulty",
            "all_quality",
            "q4",
            "low_pct",
            "data_mb",
        ],
    )?;
    let mut table = TextTable::new(vec![
        "content",
        "hardness",
        "ladder",
        "all qual",
        "Q4 qual",
        "low-q %",
        "data (MB)",
    ]);
    let mut fixed_all = Vec::new();
    let mut per_title_all = Vec::new();
    for (k, &(name, genre, seed, hardness)) in CONTENTS.iter().enumerate() {
        let difficulty = hardness;
        for (label, ladder) in [
            ("fixed", base.clone()),
            ("per-title", base.per_title(scales[k] / mean_scale)),
        ] {
            let video_name = format!("{name}-{label}");
            let video = engine::video_with(&video_name, || {
                Video::synthesize_with_hardness(
                    video_name.clone(),
                    genre,
                    300,
                    2.0,
                    &ladder,
                    &EncoderConfig::capped_2x(EncoderSource::FFmpeg, seed),
                    seed,
                    hardness,
                )
            });
            let sessions = run_with_factory(
                &|| Box::new(Cava::paper_default()),
                &video,
                &traces,
                &qoe,
                &player,
            );
            let all_q = mean_of(Metric::AllQuality, &sessions);
            if label == "fixed" {
                fixed_all.push(all_q);
            } else {
                per_title_all.push(all_q);
            }
            table.add_row(vec![
                name.to_string(),
                format!("{difficulty:.2}"),
                label.to_string(),
                format!("{all_q:.1}"),
                format!("{:.1}", mean_of(Metric::Q4Quality, &sessions)),
                format!("{:.1}", mean_of(Metric::LowQualityPct, &sessions)),
                format!("{:.0}", mean_of(Metric::DataUsageMb, &sessions)),
            ]);
            csv.write_str_row(&[
                name,
                label,
                &format!("{difficulty:.3}"),
                &format!("{all_q:.2}"),
                &format!("{:.2}", mean_of(Metric::Q4Quality, &sessions)),
                &format!("{:.2}", mean_of(Metric::LowQualityPct, &sessions)),
                &format!("{:.1}", mean_of(Metric::DataUsageMb, &sessions)),
            ])?;
        }
        table.add_separator();
    }
    csv.flush()?;
    print!("{table}");
    let spread = |xs: &[f64]| {
        xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - xs.iter().cloned().fold(f64::INFINITY, f64::min)
    };
    println!(
        "across-title quality spread: fixed {:.1} VMAF, per-title {:.1} VMAF (budget-neutral)",
        spread(&fixed_all),
        spread(&per_title_all)
    );
    println!("per-title narrows the spread by giving hard titles more bits per rung");
    println!("wrote {}", path.display());
    Ok(())
}
