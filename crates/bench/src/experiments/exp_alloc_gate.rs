//! `alloc_gate` — allocation counts on the decision hot path.
//!
//! Measures allocations and bytes per steady-state decision for the paper's
//! three headline schemes (CAVA, BOLA, RBA) through the in-process
//! [`SessionStore::decide`] path and through a real socket on both server
//! backends, using the `counted-alloc` counting global allocator. The first
//! decision per session is warm-up (scheme caches, connection buffers reach
//! steady-state capacity) and is excluded from the window.
//!
//! Writes `BENCH_alloc.json`. `scripts/check.sh` diffs it against the
//! committed baseline with `bench_gate`, which holds `allocs_per_decision`
//! and `bytes_per_decision` to an **exact** gate: any increase over the
//! baseline fails, independent of the latency tolerance. Allocation counts
//! are deterministic where latency is noisy, so the gate has no variance to
//! absorb — the committed baseline is all zeros and must stay that way.
//!
//! The measuring implementation only builds with the crate's
//! `counted-alloc` feature, and only the dedicated `exp_alloc_gate` binary
//! installs the counting allocator; without the feature this experiment is
//! a no-op skip so `all_experiments` still runs end to end on a default
//! build.
//!
//! [`SessionStore::decide`]: abr_serve::store::SessionStore::decide

use serde::{Deserialize, Serialize};

/// Allocation counts for one scheme through one path, averaged over the
/// measured steady-state decisions.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PathAlloc {
    /// Steady-state decisions in the measurement window.
    pub decisions: u64,
    /// Allocator calls per decision (exact-gated by `bench_gate`).
    pub allocs_per_decision: f64,
    /// Allocated bytes per decision (exact-gated by `bench_gate`).
    pub bytes_per_decision: f64,
}

/// Per-scheme allocation counts across the three measured paths.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchemeAlloc {
    /// Scheme name as accepted by the serving protocol ("cava", ...).
    pub scheme: String,
    /// `SessionStore::decide` called directly, thread-scoped counts.
    pub in_process: PathAlloc,
    /// Decide round trips over TCP against the poll-based reactor backend,
    /// process-global counts (client and server threads both quiet).
    pub socket_reactor: PathAlloc,
    /// Same round trips against the thread-per-connection backend.
    pub socket_threaded: PathAlloc,
}

/// Everything `BENCH_alloc.json` records.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AllocBench {
    /// Warm-up decisions per session excluded from every window.
    pub warmup_decisions: u64,
    /// One entry per measured scheme, in measurement order.
    pub schemes: Vec<SchemeAlloc>,
}

/// Without the `counted-alloc` feature the experiment skips itself.
#[cfg(not(feature = "counted-alloc"))]
pub fn run() -> std::io::Result<()> {
    // `run_all` aborts on the first experiment error, so a default build
    // skips rather than refuses; the `exp_alloc_gate` binary itself refuses
    // to build a measurement without the feature.
    eprintln!(
        "alloc_gate: skipped — rebuild with `--features counted-alloc` to measure \
         (no BENCH_alloc.json written)"
    );
    Ok(())
}

#[cfg(feature = "counted-alloc")]
pub use measure::run;

#[cfg(feature = "counted-alloc")]
mod measure {
    use super::{AllocBench, PathAlloc, SchemeAlloc};
    use crate::experiments::banner;
    use abr_serve::protocol::{
        decode_frame, encode_frame_into, read_frame, write_frame, Frame, PROTOCOL_VERSION,
    };
    use abr_serve::store::{dataset_provider, SessionStore, StoreConfig};
    use abr_serve::{Backend, Server, ServerConfig};
    use abr_sim::DecisionRequest;
    use counted_alloc::AllocScope;
    use std::io::{self, Read, Write};
    use std::net::TcpStream;
    use std::thread;

    const VIDEO: &str = "ED-youtube-h264";
    const SCHEMES: [&str; 3] = ["cava", "bola", "rba"];
    /// Steady-state decisions measured per scheme and path.
    const MEASURED: usize = 48;
    /// Decisions excluded per session before any window opens.
    const WARMUP: usize = 1;

    fn per_decision(allocs: u64, bytes: u64) -> PathAlloc {
        PathAlloc {
            decisions: MEASURED as u64,
            allocs_per_decision: allocs as f64 / MEASURED as f64,
            bytes_per_decision: bytes as f64 / MEASURED as f64,
        }
    }

    fn request_for_chunk(chunk: usize, n_chunks: usize) -> DecisionRequest {
        DecisionRequest {
            chunk_index: chunk,
            buffer_s: (chunk as f64 * 1.5).min(30.0),
            estimated_bandwidth_bps: Some(4.0e6),
            last_level: if chunk == 0 { None } else { Some(0) },
            latest_throughput_bps: Some(4.0e6 + chunk as f64),
            wall_time_s: chunk as f64 * 4.0,
            startup_complete: chunk > 0,
            visible_chunks: n_chunks,
        }
    }

    fn quiet_store_config() -> StoreConfig {
        StoreConfig {
            capacity: 8,
            idle_ticks: u64::MAX,
            ..StoreConfig::default()
        }
    }

    /// Thread-scoped counts for `SessionStore::decide` called directly.
    fn measure_in_process(scheme: &str, n_chunks: usize) -> io::Result<PathAlloc> {
        let store = SessionStore::new(quiet_store_config(), dataset_provider());
        store
            .open(1, 7, VIDEO, scheme, 0)
            .map_err(io::Error::other)?;
        for chunk in 0..WARMUP {
            store
                .decide(7, &request_for_chunk(chunk, n_chunks))
                .map_err(io::Error::other)?;
        }
        let scope = AllocScope::thread();
        for chunk in WARMUP..WARMUP + MEASURED {
            match store.decide(7, &request_for_chunk(chunk, n_chunks)) {
                Ok(response) => {
                    std::hint::black_box(response);
                }
                Err(err) => return Err(io::Error::other(err)),
            }
        }
        let delta = scope.delta();
        Ok(per_decision(delta.allocs, delta.bytes))
    }

    /// One decision round trip that itself allocates nothing: encode into a
    /// reused wire buffer, read the reply into a reused body buffer, decode
    /// in place.
    fn decide_roundtrip(
        stream: &mut TcpStream,
        wire: &mut Vec<u8>,
        body: &mut Vec<u8>,
        session_id: u64,
        chunk: usize,
        n_chunks: usize,
    ) -> io::Result<()> {
        wire.clear();
        encode_frame_into(
            wire,
            &Frame::Decide {
                session_id,
                request: request_for_chunk(chunk, n_chunks),
            },
        )
        .map_err(io::Error::other)?;
        stream.write_all(wire)?;
        let mut prefix = [0u8; 4];
        stream.read_exact(&mut prefix)?;
        let len = u32::from_le_bytes(prefix) as usize;
        body.clear();
        body.resize(len, 0);
        stream.read_exact(body)?;
        match decode_frame(body).map_err(io::Error::other)? {
            Frame::Decision {
                session_id: sid, ..
            } if sid == session_id => Ok(()),
            other => Err(io::Error::other(format!(
                "expected Decision, got {other:?}"
            ))),
        }
    }

    /// Process-global counts per scheme for decide round trips over TCP
    /// against one backend. One server, one connection, one session per
    /// scheme; each scheme gets its own measurement window after all
    /// sessions are warmed up.
    fn measure_socket(backend: Backend) -> io::Result<Vec<PathAlloc>> {
        let config = ServerConfig {
            backend,
            threads: 2,
            queue_depth: 8,
            read_deadline_ms: 0,
            write_deadline_ms: 0,
            poll_ms: 1,
            store: quiet_store_config(),
        };
        let bound = Server::bind("127.0.0.1:0", config, dataset_provider())?;
        let addr = bound.addr();
        let handle = thread::spawn(move || bound.serve());

        let mut stream = TcpStream::connect(addr)?;
        write_frame(
            &mut stream,
            &Frame::Hello {
                version: PROTOCOL_VERSION,
            },
        )
        .map_err(io::Error::other)?;
        match read_frame(&mut stream).map_err(io::Error::other)? {
            Frame::HelloOk { .. } => {}
            other => return Err(io::Error::other(format!("expected HelloOk, got {other:?}"))),
        }
        let mut n_chunks = 0usize;
        for (i, scheme) in SCHEMES.iter().enumerate() {
            write_frame(
                &mut stream,
                &Frame::OpenSession {
                    session_id: i as u64 + 1,
                    video: VIDEO.to_string(),
                    scheme: (*scheme).to_string(),
                    vmaf_model: 0,
                },
            )
            .map_err(io::Error::other)?;
            match read_frame(&mut stream).map_err(io::Error::other)? {
                Frame::OpenOk {
                    n_chunks: n,
                    degraded: false,
                    ..
                } => n_chunks = n as usize,
                other => return Err(io::Error::other(format!("expected OpenOk, got {other:?}"))),
            }
        }
        if n_chunks <= WARMUP + MEASURED {
            return Err(io::Error::other("video too short for the alloc window"));
        }

        let mut wire = Vec::with_capacity(256);
        let mut body = Vec::with_capacity(64);
        // Warm-up: scheme caches build and connection buffers reach
        // steady-state capacity on both ends.
        for sid in 1..=SCHEMES.len() as u64 {
            for chunk in 0..WARMUP {
                decide_roundtrip(&mut stream, &mut wire, &mut body, sid, chunk, n_chunks)?;
            }
        }

        let mut paths = Vec::with_capacity(SCHEMES.len());
        for sid in 1..=SCHEMES.len() as u64 {
            let scope = AllocScope::global();
            for chunk in WARMUP..WARMUP + MEASURED {
                decide_roundtrip(&mut stream, &mut wire, &mut body, sid, chunk, n_chunks)?;
            }
            let delta = scope.delta();
            paths.push(per_decision(delta.allocs, delta.bytes));
        }

        // Hang up before requesting shutdown — the reactor serves existing
        // connections until they close, even mid-shutdown.
        drop(stream);
        abr_serve::loadgen::shutdown_server(addr).map_err(io::Error::other)?;
        handle
            .join()
            .map_err(|_| io::Error::other("server thread panicked"))?;
        Ok(paths)
    }

    /// Measure all schemes through all paths and write `BENCH_alloc.json`.
    pub fn run() -> io::Result<()> {
        banner("alloc_gate", "Allocations per steady-state decision");
        if !counted_alloc::counting_enabled() {
            return Err(io::Error::other(
                "counting allocator not installed in this binary; \
                 run `exp_alloc_gate` built with `--features counted-alloc`",
            ));
        }
        let n_chunks = dataset_provider()(VIDEO)
            .ok_or_else(|| io::Error::other("dataset is missing the alloc-gate video"))?
            .manifest
            .n_chunks();
        if n_chunks <= WARMUP + MEASURED {
            return Err(io::Error::other("video too short for the alloc window"));
        }

        let mut in_process = Vec::with_capacity(SCHEMES.len());
        for scheme in SCHEMES {
            in_process.push(measure_in_process(scheme, n_chunks)?);
        }
        let socket_reactor = measure_socket(Backend::Reactor)?;
        let socket_threaded = measure_socket(Backend::Threaded)?;

        let bench = AllocBench {
            warmup_decisions: WARMUP as u64,
            schemes: SCHEMES
                .iter()
                .zip(in_process)
                .zip(socket_reactor)
                .zip(socket_threaded)
                .map(
                    |(((scheme, in_process), socket_reactor), socket_threaded)| SchemeAlloc {
                        scheme: (*scheme).to_string(),
                        in_process,
                        socket_reactor,
                        socket_threaded,
                    },
                )
                .collect(),
        };

        println!(
            "  {:<8} {:>14} {:>16} {:>16}",
            "scheme", "in-process", "socket/reactor", "socket/threaded"
        );
        for s in &bench.schemes {
            println!(
                "  {:<8} {:>8.2} allocs {:>9.2} allocs {:>9.2} allocs",
                s.scheme,
                s.in_process.allocs_per_decision,
                s.socket_reactor.allocs_per_decision,
                s.socket_threaded.allocs_per_decision
            );
        }

        let path = std::path::PathBuf::from("BENCH_alloc.json");
        let json = serde_json::to_string_pretty(&bench).map_err(io::Error::other)?;
        std::fs::write(&path, json)?;
        println!("  wrote {}", path.display());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_round_trips() {
        let bench = AllocBench {
            warmup_decisions: 1,
            schemes: vec![SchemeAlloc {
                scheme: "cava".to_string(),
                in_process: PathAlloc {
                    decisions: 48,
                    allocs_per_decision: 0.0,
                    bytes_per_decision: 0.0,
                },
                socket_reactor: PathAlloc {
                    decisions: 48,
                    allocs_per_decision: 0.0,
                    bytes_per_decision: 0.0,
                },
                socket_threaded: PathAlloc {
                    decisions: 48,
                    allocs_per_decision: 0.25,
                    bytes_per_decision: 16.0,
                },
            }],
        };
        let json = serde_json::to_string_pretty(&bench).expect("serialize");
        let back: AllocBench = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.schemes.len(), 1);
        assert_eq!(back.schemes[0].scheme, "cava");
        assert_eq!(back.schemes[0].socket_threaded.decisions, 48);
        assert!(json.contains("allocs_per_decision"));
    }
}
