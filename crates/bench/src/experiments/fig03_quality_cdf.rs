//! Fig. 3 — CDFs of chunk quality (PSNR, SSIM, VMAF-TV, VMAF-Phone) by
//! size-quartile class, for the 480p track of the YouTube-encoded Elephant
//! Dream.
//!
//! The paper's central characterization finding: Q1→Q4 chunks have
//! *increasing* sizes but *decreasing* quality, with a particularly large
//! gap between Q4 and the rest (§3.1.2).

use crate::engine;
use crate::experiments::banner;
use crate::results_dir;
use sim_report::{AsciiChart, Cdf, CsvWriter, Series, TextTable};
use std::io;
use vbr_video::classify::{ChunkClass, Classification};
use vbr_video::quality::ChunkQuality;

/// Run this experiment (registry entry point).
pub fn run() -> io::Result<()> {
    banner(
        "Fig. 3",
        "Quality of chunks by class (ED, YouTube, H.264, 480p track)",
    );
    let video = engine::video("ED-youtube-h264");
    let classification = Classification::from_video(&video);
    let track = video.n_tracks() / 2; // 480p
    println!(
        "track {track} ({}), {} chunks",
        video.track(track).resolution().label(),
        video.n_chunks()
    );

    #[allow(clippy::type_complexity)]
    let metrics: [(&str, fn(&ChunkQuality) -> f64); 4] = [
        ("psnr", |q| q.psnr),
        ("ssim", |q| q.ssim),
        ("vmaf_tv", |q| q.vmaf_tv),
        ("vmaf_phone", |q| q.vmaf_phone),
    ];

    let mut table = TextTable::new(vec![
        "metric",
        "Q1 median",
        "Q2 median",
        "Q3 median",
        "Q4 median",
    ]);
    for (name, f) in metrics {
        let mut row = vec![name.to_string()];
        let mut per_class: Vec<Vec<f64>> = Vec::new();
        for class in ChunkClass::ALL {
            let values: Vec<f64> = classification
                .positions_of(class)
                .iter()
                .map(|&i| f(&video.quality(track, i)))
                .collect();
            let cdf = Cdf::new(&values).expect("non-empty class");
            row.push(format!("{:.2}", cdf.quantile(0.5)));
            per_class.push(values);
        }
        table.add_row(row);

        // CSV: sorted values per class (one column per class, padded rows).
        let path = results_dir().join(format!("fig03_quality_cdf_{name}.csv"));
        let mut csv = CsvWriter::create(&path, &["class", "value", "cdf"])?;
        for (ci, values) in per_class.iter().enumerate() {
            let cdf = Cdf::new(values).expect("non-empty");
            for (x, fx) in cdf.points() {
                csv.write_str_row(&[
                    ChunkClass::from_index(ci).label(),
                    &format!("{x:.4}"),
                    &format!("{fx:.4}"),
                ])?;
            }
        }
        csv.flush()?;
    }
    print!("{table}");
    println!("paper: quality decreases Q1→Q4; the Q4 gap is the largest");

    // ASCII CDF for the VMAF-TV panel.
    let mut chart = AsciiChart::new("VMAF-TV CDF by class", 80, 18)
        .x_label("VMAF (TV model)")
        .y_label("CDF");
    for (class, glyph) in [
        (ChunkClass::Q1, '1'),
        (ChunkClass::Q2, '2'),
        (ChunkClass::Q3, '3'),
        (ChunkClass::Q4, '4'),
    ] {
        let values: Vec<f64> = classification
            .positions_of(class)
            .iter()
            .map(|&i| video.quality(track, i).vmaf_tv)
            .collect();
        let cdf = Cdf::new(&values).expect("non-empty");
        chart.add_series(Series::new(class.label(), glyph, cdf.points()));
    }
    print!("{chart}");
    println!(
        "wrote {}",
        results_dir().join("fig03_quality_cdf_*.csv").display()
    );
    Ok(())
}
