//! §6.7 — impact of bandwidth-prediction error.
//!
//! The predicted bandwidth is replaced by `C_t · U(1 − err, 1 + err)` with
//! `err ∈ {0, 25 %, 50 %}`. Paper findings: CAVA is insensitive (the PID
//! loop keeps correcting the buffer error regardless of what the predictor
//! claims), while MPC rebuffers and over-downloads significantly at 50 %,
//! and PANDA/CQ max-min rebuffers noticeably more.

use crate::engine;
use crate::experiments::banner;
use crate::harness::{mean_of, run_scheme, Metric, SchemeKind, TraceSet};
use crate::results_dir;
use abr_sim::PlayerConfig;
use sim_report::{CsvWriter, TextTable};
use std::io;

/// The §6.7 error grid.
pub const ERROR_SWEEP: [f64; 3] = [0.0, 0.25, 0.50];

/// Run this experiment (registry entry point).
pub fn run() -> io::Result<()> {
    banner("§6.7", "Impact of bandwidth prediction error");
    let video = engine::video("ED-ffmpeg-h264");
    let traces = engine::traces(TraceSet::Lte);
    let qoe = TraceSet::Lte.qoe_config();

    let schemes = [
        SchemeKind::Cava,
        SchemeKind::Mpc,
        SchemeKind::RobustMpc,
        SchemeKind::PandaMaxMin,
    ];
    let path = results_dir().join("exp_bw_error.csv");
    let mut csv = CsvWriter::create(
        &path,
        &["scheme", "err", "q4", "low_pct", "rebuf_s", "data_mb"],
    )?;
    let mut table = TextTable::new(vec![
        "scheme",
        "err",
        "Q4 quality",
        "low-qual %",
        "rebuffer (s)",
        "data (MB)",
    ]);
    for scheme in schemes {
        for err in ERROR_SWEEP {
            let player = PlayerConfig {
                bandwidth_error: if err > 0.0 { Some((err, 1234)) } else { None },
                ..PlayerConfig::default()
            };
            let sessions = run_scheme(scheme, &video, &traces, &qoe, &player);
            table.add_row(vec![
                scheme.name().to_string(),
                format!("{:.0}%", err * 100.0),
                format!("{:.1}", mean_of(Metric::Q4Quality, &sessions)),
                format!("{:.1}", mean_of(Metric::LowQualityPct, &sessions)),
                format!("{:.1}", mean_of(Metric::RebufferS, &sessions)),
                format!("{:.0}", mean_of(Metric::DataUsageMb, &sessions)),
            ]);
            csv.write_str_row(&[
                scheme.name(),
                &format!("{err}"),
                &format!("{:.2}", mean_of(Metric::Q4Quality, &sessions)),
                &format!("{:.2}", mean_of(Metric::LowQualityPct, &sessions)),
                &format!("{:.2}", mean_of(Metric::RebufferS, &sessions)),
                &format!("{:.1}", mean_of(Metric::DataUsageMb, &sessions)),
            ])?;
        }
        table.add_separator();
    }
    csv.flush()?;
    print!("{table}");
    println!("paper: CAVA's metrics at err=50% ≈ err=0 (control-theoretic underpinning);");
    println!("       MPC rebuffers and uses much more data at 50%; PANDA max-min rebuffers noticeably more");
    println!("wrote {}", path.display());
    Ok(())
}
