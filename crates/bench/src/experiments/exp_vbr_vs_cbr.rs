//! VBR vs CBR (extension) — the §1 motivation quantified.
//!
//! The paper motivates VBR with "the ability to realize better video quality
//! for the same average bitrate" than CBR. We encode the same content at the
//! same ladder averages both ways, stream both with CAVA over the LTE
//! traces, and compare delivered quality per byte. CBR's loss concentrates
//! exactly where the paper says it does: complex scenes, which CBR starves
//! much harder than capped VBR.

use crate::engine;
use crate::experiments::banner;
use crate::harness::{mean_of, run_scheme, Metric, SchemeKind, TraceSet};
use crate::results_dir;
use abr_sim::PlayerConfig;
use sim_report::{CsvWriter, TextTable};
use std::io;
use vbr_video::classify::{ChunkClass, Classification};

/// Run this experiment (registry entry point).
pub fn run() -> io::Result<()> {
    banner(
        "ext: VBR vs CBR",
        "Same content, same average bitrates, two encodings",
    );
    let vbr = engine::video("ED-ffmpeg-h264");
    let cbr = engine::video("ED-ffmpeg-h264-cbr");

    // Encoding-level comparison at the middle track.
    let track = vbr.n_tracks() / 2;
    let classes = Classification::from_video(&vbr);
    let mut enc = TextTable::new(vec![
        "encoding",
        "track CoV",
        "Q1 mean VMAF(phone)",
        "Q4 mean VMAF(phone)",
        "all mean",
    ]);
    for video in [&vbr, &cbr] {
        let mean_of_class = |class: Option<ChunkClass>| {
            let pos: Vec<usize> = match class {
                Some(c) => classes.positions_of(c),
                None => (0..video.n_chunks()).collect(),
            };
            pos.iter()
                .map(|&i| video.quality(track, i).vmaf_phone)
                .sum::<f64>()
                / pos.len() as f64
        };
        enc.add_row(vec![
            video.name().to_string(),
            format!("{:.2}", video.track(track).bitrate_cov()),
            format!("{:.1}", mean_of_class(Some(ChunkClass::Q1))),
            format!("{:.1}", mean_of_class(Some(ChunkClass::Q4))),
            format!("{:.1}", mean_of_class(None)),
        ]);
    }
    print!("{enc}");
    println!("paper §1: VBR gives better quality at the same average bitrate than CBR");

    // Streaming-level comparison: CAVA on both encodings.
    let traces = engine::traces(TraceSet::Lte);
    let qoe = TraceSet::Lte.qoe_config();
    let player = PlayerConfig::default();
    let path = results_dir().join("exp_vbr_vs_cbr.csv");
    let mut csv = CsvWriter::create(
        &path,
        &[
            "encoding", "q4", "q13", "all", "low_pct", "rebuf_s", "data_mb",
        ],
    )?;
    let mut table = TextTable::new(vec![
        "encoding (CAVA)",
        "Q4 qual",
        "Q1-3 qual",
        "all qual",
        "low-q %",
        "rebuf (s)",
        "data (MB)",
    ]);
    for video in [&vbr, &cbr] {
        let sessions = run_scheme(SchemeKind::Cava, video, &traces, &qoe, &player);
        table.add_row(vec![
            video.name().to_string(),
            format!("{:.1}", mean_of(Metric::Q4Quality, &sessions)),
            format!("{:.1}", mean_of(Metric::Q13Quality, &sessions)),
            format!("{:.1}", mean_of(Metric::AllQuality, &sessions)),
            format!("{:.1}", mean_of(Metric::LowQualityPct, &sessions)),
            format!("{:.1}", mean_of(Metric::RebufferS, &sessions)),
            format!("{:.0}", mean_of(Metric::DataUsageMb, &sessions)),
        ]);
        csv.write_str_row(&[
            video.name(),
            &format!("{:.2}", mean_of(Metric::Q4Quality, &sessions)),
            &format!("{:.2}", mean_of(Metric::Q13Quality, &sessions)),
            &format!("{:.2}", mean_of(Metric::AllQuality, &sessions)),
            &format!("{:.2}", mean_of(Metric::LowQualityPct, &sessions)),
            &format!("{:.2}", mean_of(Metric::RebufferS, &sessions)),
            &format!("{:.1}", mean_of(Metric::DataUsageMb, &sessions)),
        ])?;
    }
    csv.flush()?;
    print!("{table}");
    println!("wrote {}", path.display());
    Ok(())
}
