//! Population-scale sweep: reduce a seeded `abr-pop` viewer population to
//! per-cohort QoE through the in-process simulator.
//!
//! Each viewer session is **pure in its index**: [`abr_pop::Population`]
//! derives arrival, cohort, trace seed, and behaviour overlay from
//! `(seed, index)` alone, so the sweep fans out over the engine's dynamic
//! scheduler ([`crate::engine::run_indexed_on`]) and reduces in index
//! order. The per-cohort summaries — and their canonical CSV rendering
//! ([`csv_bytes`]) — are therefore **byte-identical for any worker count**,
//! which `tests/population_determinism.rs` and the `scripts/check.sh`
//! population smoke both assert.
//!
//! Sessions that abandon before fetching a single chunk carry no QoE
//! sample (there is nothing to score) but still count toward their
//! cohort's session/abandon totals.

use crate::engine::{self, PreparedVideo};
use crate::harness::SchemeKind;
use abr_pop::{Cohort, PopConfig, Population};
use abr_sim::metrics::evaluate;
use abr_sim::Simulator;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Everything the aggregation needs from one viewer session. Kept small on
/// purpose: a million-session sweep holds one of these per session.
#[derive(Debug, Clone)]
struct SessionReduced {
    cohort: Cohort,
    watched_s: f64,
    chunks: usize,
    n_seeks: usize,
    abandoned: bool,
    startup_delay_s: f64,
    rebuffer_s: f64,
    /// `all_quality_mean` / `low_quality_pct`; `None` for zero-chunk
    /// sessions (immediate abandons), which have no quality to score.
    quality: Option<(f64, f64)>,
}

/// One cohort's aggregate over the sweep: a row of
/// `results/exp_population.csv` and an entry of the `cohorts` array in
/// `BENCH_population.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortSummary {
    /// Stable cohort label (`phone-5g`, `tv-fcc-live`, ...).
    pub cohort: String,
    /// Sessions the population assigned to this cohort.
    pub sessions: usize,
    /// Sessions that abandoned before the video ended.
    pub abandoned: usize,
    /// Total mid-session seeks across the cohort.
    pub seeks: usize,
    /// Total chunks streamed by the cohort.
    pub chunks: u64,
    /// Sessions with at least one chunk (the QoE denominators below).
    pub scored: usize,
    /// Mean per-session VMAF quality over scored sessions.
    pub mean_quality: f64,
    /// Mean per-session low-quality time share (%) over scored sessions.
    pub low_quality_pct: f64,
    /// Mean rebuffering seconds per session (all sessions).
    pub mean_rebuffer_s: f64,
    /// Mean startup delay seconds per session (all sessions).
    pub mean_startup_s: f64,
    /// Mean watched wall-clock seconds per session (all sessions).
    pub mean_watched_s: f64,
}

/// Header of the canonical per-cohort CSV, aligned with
/// [`CohortSummary`]'s fields.
pub const CSV_HEADER: [&str; 11] = [
    "cohort",
    "sessions",
    "abandoned",
    "seeks",
    "chunks",
    "scored",
    "mean_quality",
    "low_quality_pct",
    "mean_rebuffer_s",
    "mean_startup_s",
    "mean_watched_s",
];

fn reduce_session(pop: &Population, video: &PreparedVideo, index: usize) -> SessionReduced {
    let viewer = pop.session(index);
    let qoe = viewer.cohort.qoe_config();
    let trace = viewer.cohort.network.trace(viewer.trace_seed);
    let mut algo = SchemeKind::Cava.build(video, qoe.vmaf_model);
    let sim = Simulator::new(viewer.cohort.player_config());
    let result = sim.run_controlled(algo.as_mut(), &video.manifest, &trace, &viewer.control);
    let quality = if result.records.is_empty() {
        None
    } else {
        let m = evaluate(&result, video, &video.classification, &qoe);
        Some((m.all_quality_mean, m.low_quality_pct))
    };
    SessionReduced {
        cohort: viewer.cohort,
        watched_s: result.wall_time_s,
        chunks: result.records.len(),
        n_seeks: result.n_seeks,
        abandoned: result.abandoned,
        startup_delay_s: result.startup_delay_s,
        rebuffer_s: result.total_stall_s,
        quality,
    }
}

#[derive(Debug, Clone, Default)]
struct Acc {
    sessions: usize,
    abandoned: usize,
    seeks: usize,
    chunks: u64,
    scored: usize,
    quality_sum: f64,
    low_pct_sum: f64,
    rebuffer_sum: f64,
    startup_sum: f64,
    watched_sum: f64,
}

/// Run the whole population against `video` (every viewer streams with the
/// paper's CAVA scheme) on `threads` workers and aggregate per cohort.
///
/// Cohorts appear in [`Cohort::all`] report order; cohorts the mix never
/// sampled are omitted. Aggregation walks sessions in index order, so the
/// result is independent of `threads`.
pub fn sweep(config: PopConfig, video: &PreparedVideo, threads: usize) -> Vec<CohortSummary> {
    let pop = Population::new(config);
    let reduced = engine::run_indexed_on(threads, pop.len(), |i| reduce_session(&pop, video, i));
    // Ordered map (abr-lint R2): accumulation and report order are stable.
    let mut by_cohort: BTreeMap<Cohort, Acc> = BTreeMap::new();
    for r in &reduced {
        let acc = by_cohort.entry(r.cohort).or_default();
        acc.sessions += 1;
        acc.abandoned += usize::from(r.abandoned);
        acc.seeks += r.n_seeks;
        acc.chunks += r.chunks as u64;
        if let Some((quality, low_pct)) = r.quality {
            acc.scored += 1;
            acc.quality_sum += quality;
            acc.low_pct_sum += low_pct;
        }
        acc.rebuffer_sum += r.rebuffer_s;
        acc.startup_sum += r.startup_delay_s;
        acc.watched_sum += r.watched_s;
    }
    Cohort::all()
        .into_iter()
        .filter_map(|cohort| {
            let acc = by_cohort.get(&cohort)?;
            let n = acc.sessions as f64;
            let scored = acc.scored.max(1) as f64;
            Some(CohortSummary {
                cohort: cohort.label(),
                sessions: acc.sessions,
                abandoned: acc.abandoned,
                seeks: acc.seeks,
                chunks: acc.chunks,
                scored: acc.scored,
                mean_quality: acc.quality_sum / scored,
                low_quality_pct: acc.low_pct_sum / scored,
                mean_rebuffer_s: acc.rebuffer_sum / n,
                mean_startup_s: acc.startup_sum / n,
                mean_watched_s: acc.watched_sum / n,
            })
        })
        .collect()
}

/// Render one summary as the canonical CSV cell strings (fixed-precision
/// floats — the byte-stability contract of the determinism tests).
pub fn csv_row(s: &CohortSummary) -> Vec<String> {
    vec![
        s.cohort.clone(),
        s.sessions.to_string(),
        s.abandoned.to_string(),
        s.seeks.to_string(),
        s.chunks.to_string(),
        s.scored.to_string(),
        format!("{:.4}", s.mean_quality),
        format!("{:.4}", s.low_quality_pct),
        format!("{:.4}", s.mean_rebuffer_s),
        format!("{:.4}", s.mean_startup_s),
        format!("{:.4}", s.mean_watched_s),
    ]
}

/// The full canonical CSV document (header + one row per cohort). This is
/// the byte-identity witness: equal across worker counts and repeat runs
/// of the same seeded population.
pub fn csv_bytes(summaries: &[CohortSummary]) -> String {
    let mut out = CSV_HEADER.join(",");
    out.push('\n');
    for s in summaries {
        out.push_str(&csv_row(s).join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_pop(sessions: usize) -> PopConfig {
        PopConfig {
            seed: 7,
            sessions,
            ..PopConfig::default()
        }
    }

    #[test]
    fn sweep_covers_sessions_and_behaviours() {
        let video = engine::video("ED-youtube-h264");
        let summaries = sweep(small_pop(64), &video, 4);
        assert!(!summaries.is_empty());
        let total: usize = summaries.iter().map(|s| s.sessions).sum();
        assert_eq!(total, 64);
        let abandoned: usize = summaries.iter().map(|s| s.abandoned).sum();
        assert!(abandoned > 0, "default lifecycle should abandon some");
        let labels: Vec<&str> = summaries.iter().map(|s| s.cohort.as_str()).collect();
        let all: Vec<String> = Cohort::all().iter().map(Cohort::label).collect();
        // Report order is Cohort::all() order.
        let mut last = 0usize;
        for label in &labels {
            let pos = all.iter().position(|l| l == label).unwrap();
            assert!(pos >= last);
            last = pos;
        }
    }

    #[test]
    fn sweep_is_thread_count_independent() {
        let video = engine::video("ED-youtube-h264");
        let serial = sweep(small_pop(48), &video, 1);
        let wide = sweep(small_pop(48), &video, 8);
        assert_eq!(serial, wide);
        assert_eq!(csv_bytes(&serial), csv_bytes(&wide));
    }

    #[test]
    fn csv_document_is_canonical() {
        let video = engine::video("ED-youtube-h264");
        let summaries = sweep(small_pop(16), &video, 2);
        let doc = csv_bytes(&summaries);
        let mut lines = doc.lines();
        assert_eq!(lines.next().unwrap(), CSV_HEADER.join(","));
        assert_eq!(doc.lines().count(), summaries.len() + 1);
        for line in lines {
            assert_eq!(line.split(',').count(), CSV_HEADER.len());
        }
    }
}
