//! The experiment engine: memoized dataset artifacts, one shared scheduler,
//! and the journaled experiment driver.
//!
//! Before the engine existed, every experiment binary rebuilt its videos,
//! manifests, classifications, and trace corpora from scratch, and every
//! `run_*` call spawned its own slab of threads. The engine centralizes all
//! of that:
//!
//! * **Artifact caches** — [`video`], [`video_with`], and [`traces`] memoize
//!   each dataset video (with its [`Manifest`] and [`Classification`]
//!   pre-built, see [`PreparedVideo`]) and each trace corpus behind
//!   process-wide keyed caches, so a full [`run_all`] generates each
//!   artifact exactly once. [`video_generations`]/[`trace_generations`]
//!   count actual builds, which the cache tests pin down.
//! * **Scheduler** — [`run_indexed`] is a dynamic (atomic work-queue)
//!   scheduler over `std::thread::scope`: workers pull the next index until
//!   the queue drains, so an uneven scheme × trace grid load-balances
//!   instead of waiting on the slowest fixed slab. [`run_grid`] flattens a
//!   whole scheme set × trace corpus into that single queue.
//! * **Driver** — [`run_ids`]/[`run_all`] run registry experiments with a
//!   progress line per experiment and a structured [`crate::journal`]
//!   (per-experiment wall time, seeds, trace counts, scheme sets, summary
//!   metrics) written under `results/journal/`.
//!
//! Experiment *bodies* stay sequential — their stdout is the deliverable
//! and must not interleave — while everything inside a body fans out
//! through the shared scheduler, and [`run_all`] pre-builds the full
//! dataset and both trace corpora in parallel before the first experiment
//! starts.
//!
//! # Registering and running an experiment
//!
//! ```no_run
//! use abr_bench::engine;
//! use abr_bench::harness::{SchemeKind, TraceSet};
//!
//! // An experiment body: fetch cached artifacts, fan out, print, save.
//! fn run() -> std::io::Result<()> {
//!     let video = engine::video("ED-ffmpeg-h264");   // cached, prepared
//!     let traces = engine::traces(TraceSet::Lte);    // cached corpus
//!     let qoe = TraceSet::Lte.qoe_config();
//!     let player = abr_sim::PlayerConfig::default();
//!     let grid = engine::run_grid(&SchemeKind::FIG8, &video, &traces, &qoe, &player);
//!     for (scheme, sessions) in &grid {
//!         println!("{}: {} sessions", scheme.name(), sessions.len());
//!     }
//!     Ok(())
//! }
//!
//! // Wire it into `experiments::registry()` as ("my_exp", "...", run),
//! // then drive it (journal + progress included):
//! engine::run_ids(&["my_exp"]).unwrap();
//! ```

use std::collections::BTreeMap;
use std::io;
use std::ops::Deref;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use abr_sim::metrics::{QoeConfig, QoeMetrics};
use abr_sim::PlayerConfig;
use net_trace::Trace;
use vbr_video::{Classification, Dataset, Manifest, Video};

use crate::experiments;
use crate::harness::{self, SchemeKind, TraceSet};
use crate::journal;

// ---------------------------------------------------------------------------
// Dataset caches
// ---------------------------------------------------------------------------

/// A dataset video with its derived artifacts built once: the manifest the
/// player streams from and the size-quartile classification the evaluation
/// scores against.
///
/// Derefs to [`Video`], so a `&PreparedVideo` can be passed anywhere a
/// `&Video` is expected.
#[derive(Debug, Clone)]
pub struct PreparedVideo {
    /// The synthesized video.
    pub video: Video,
    /// `Manifest::from_video`, built once.
    pub manifest: Manifest,
    /// `Classification::from_video`, built once.
    pub classification: Classification,
}

impl PreparedVideo {
    /// Prepare a video: build its manifest and classification.
    pub fn new(video: Video) -> PreparedVideo {
        let manifest = Manifest::from_video(&video);
        let classification = Classification::from_video(&video);
        PreparedVideo {
            video,
            manifest,
            classification,
        }
    }
}

impl Deref for PreparedVideo {
    type Target = Video;

    fn deref(&self) -> &Video {
        &self.video
    }
}

// Ordered maps throughout (abr-lint rule R2): nothing in this crate may
// iterate in hash order, so that journal and report output is byte-stable.
type VideoCache = Mutex<BTreeMap<String, Arc<PreparedVideo>>>;
type TraceCache = Mutex<BTreeMap<(TraceSet, usize), Arc<Vec<Trace>>>>;

static VIDEOS: OnceLock<VideoCache> = OnceLock::new();
static TRACES: OnceLock<TraceCache> = OnceLock::new();
static VIDEO_BUILDS: AtomicUsize = AtomicUsize::new(0);
static TRACE_BUILDS: AtomicUsize = AtomicUsize::new(0);

/// How many videos have actually been synthesized (cache misses). Stable
/// across repeated [`video`] calls for the same name — the exactly-once
/// guarantee the cache tests assert.
pub fn video_generations() -> usize {
    VIDEO_BUILDS.load(Ordering::SeqCst)
}

/// How many trace corpora have actually been generated (cache misses).
pub fn trace_generations() -> usize {
    TRACE_BUILDS.load(Ordering::SeqCst)
}

fn build_named(name: &str) -> Video {
    match name {
        // The two off-ladder variants that are not in `Dataset::specs()`.
        "ED-ffmpeg-h264-cap4x" => Dataset::ed_ffmpeg_h264_cap4(),
        "ED-ffmpeg-h264-cbr" => Dataset::ed_ffmpeg_h264_cbr(),
        other => {
            Dataset::by_name(other).unwrap_or_else(|| panic!("unknown dataset video `{other}`"))
        }
    }
}

/// The named dataset video, prepared and cached. Accepts every
/// `Dataset::specs()` name plus `"ED-ffmpeg-h264-cap4x"` and
/// `"ED-ffmpeg-h264-cbr"`. Repeated calls return the same `Arc`.
///
/// Panics on an unknown name (programmer error: the dataset is static).
pub fn video(name: &str) -> Arc<PreparedVideo> {
    video_with(name, || build_named(name))
}

/// Like [`video`], but for ad-hoc synthesized videos (chunk-duration and
/// per-title sweeps): on a cache miss, `build` supplies the video, which is
/// then prepared and cached under `name`. The builder's video must be named
/// `name` — mismatches would silently alias cache entries, so this panics.
pub fn video_with(name: &str, build: impl FnOnce() -> Video) -> Arc<PreparedVideo> {
    let cache = VIDEOS.get_or_init(Default::default);
    if let Some(hit) = cache.lock().expect("video cache").get(name) {
        return Arc::clone(hit);
    }
    // Build outside the lock: synthesis is expensive and other names can
    // proceed in parallel. A racing build of the same name is resolved
    // below by keeping the first insertion.
    let video = build();
    assert_eq!(video.name(), name, "video_with: builder name mismatch");
    let prepared = Arc::new(PreparedVideo::new(video));
    let mut guard = cache.lock().expect("video cache");
    match guard.get(name) {
        Some(racer) => Arc::clone(racer),
        None => {
            VIDEO_BUILDS.fetch_add(1, Ordering::SeqCst);
            guard.insert(name.to_string(), Arc::clone(&prepared));
            prepared
        }
    }
}

/// A [`VideoProvider`](abr_serve::store::VideoProvider) backed by the
/// process-wide video cache, so serving-layer experiments (soak, chaos,
/// population) share synthesized videos with every other experiment in the
/// run instead of building their own copies. There is exactly **one**
/// provider per process: every call returns a clone of the same `Arc`, so
/// the handle cache behind it is shared too — the third serving experiment
/// does not get a third copy of every video it touches.
pub fn serve_provider() -> abr_serve::store::VideoProvider {
    static PROVIDER: OnceLock<abr_serve::store::VideoProvider> = OnceLock::new();
    PROVIDER
        .get_or_init(|| {
            let handles: Mutex<BTreeMap<String, abr_serve::store::VideoHandle>> =
                Mutex::new(BTreeMap::new());
            Arc::new(move |name: &str| {
                if !abr_serve::scheme::is_known_video(name) {
                    return None;
                }
                let mut map = handles.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(hit) = map.get(name) {
                    return Some(hit.clone());
                }
                let prepared = video(name);
                let handle = abr_serve::store::VideoHandle {
                    video: Arc::new(prepared.video.clone()),
                    manifest: Arc::new(prepared.manifest.clone()),
                };
                map.insert(name.to_string(), handle.clone());
                Some(handle)
            })
        })
        .clone()
}

/// The trace corpus for `set` at the current [`harness::trace_count`],
/// cached. Repeated calls return the same `Arc`.
pub fn traces(set: TraceSet) -> Arc<Vec<Trace>> {
    traces_n(set, harness::trace_count())
}

/// The trace corpus for `(set, count)`, cached; also journals the corpus
/// use (set name, base seed, count) against the open experiment.
pub fn traces_n(set: TraceSet, count: usize) -> Arc<Vec<Trace>> {
    journal::note_traces(set.name(), set.seed(), count);
    let cache = TRACES.get_or_init(Default::default);
    if let Some(hit) = cache.lock().expect("trace cache").get(&(set, count)) {
        return Arc::clone(hit);
    }
    let generated = Arc::new(set.generate(count));
    let mut guard = cache.lock().expect("trace cache");
    match guard.get(&(set, count)) {
        Some(racer) => Arc::clone(racer),
        None => {
            TRACE_BUILDS.fetch_add(1, Ordering::SeqCst);
            guard.insert((set, count), Arc::clone(&generated));
            generated
        }
    }
}

/// Warm every cache the full evaluation needs — all 16 dataset videos, the
/// two off-ladder variants, and all four trace corpora — through the shared
/// scheduler, so [`run_all`]'s experiments only ever hit warm caches.
pub fn prefetch() {
    let mut names: Vec<String> = Dataset::specs().into_iter().map(|s| s.name).collect();
    names.push("ED-ffmpeg-h264-cap4x".to_string());
    names.push("ED-ffmpeg-h264-cbr".to_string());
    let sets = [
        TraceSet::Lte,
        TraceSet::Fcc,
        TraceSet::FiveG,
        TraceSet::Satellite,
    ];
    let total = names.len() + sets.len();
    run_indexed(total, |i| {
        if i < names.len() {
            video(&names[i]);
        } else {
            traces(sets[i - names.len()]);
        }
    });
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

/// Default worker count for `n` tasks: `ABR_THREADS` if set (results are
/// identical for any value — see the partitioning-independence test), else
/// available parallelism, capped by the task count.
pub fn default_threads(n: usize) -> usize {
    std::env::var("ABR_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&t: &usize| t > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        })
        .min(n)
        .max(1)
}

/// Run `f(0..n)` on the shared dynamic scheduler and collect the results in
/// index order. Workers pull indices from an atomic queue, so long tasks
/// don't strand short ones the way fixed slab partitioning does.
pub fn run_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_on(default_threads(n), n, f)
}

/// [`run_indexed`] with an explicit worker count — `threads = 1` is exactly
/// a serial loop, which the partitioning-independence regression test
/// compares against.
pub fn run_indexed_on<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    let collected: Vec<(usize, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("engine worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, value) in collected {
        slots[i] = Some(value);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index produced exactly once"))
        .collect()
}

/// Run a whole scheme set over one trace corpus as a single flattened
/// scheme × trace task queue — schemes evaluate concurrently instead of one
/// after another. Each session gets a **fresh** algorithm instance, so
/// results are independent of scheduling. Per-scheme session metrics come
/// back in trace order; each scheme's summary is journaled. The result is
/// an ordered map so downstream iteration (tables, CSVs, journals) is
/// byte-stable across runs and machines.
pub fn run_grid(
    schemes: &[SchemeKind],
    video: &PreparedVideo,
    traces: &[Trace],
    qoe: &QoeConfig,
    player: &PlayerConfig,
) -> BTreeMap<SchemeKind, Vec<QoeMetrics>> {
    run_grid_on(
        default_threads(schemes.len() * traces.len()),
        schemes,
        video,
        traces,
        qoe,
        player,
    )
}

/// [`run_grid`] with an explicit worker count — `threads = 1` is exactly a
/// serial loop, which the grid-determinism regression test compares against
/// higher worker counts for byte-identical journal summaries.
pub fn run_grid_on(
    threads: usize,
    schemes: &[SchemeKind],
    video: &PreparedVideo,
    traces: &[Trace],
    qoe: &QoeConfig,
    player: &PlayerConfig,
) -> BTreeMap<SchemeKind, Vec<QoeMetrics>> {
    let sim = abr_sim::Simulator::new(*player);
    let per = traces.len();
    let flat = run_indexed_on(threads, schemes.len() * per, |i| {
        let scheme = schemes[i / per];
        let trace = &traces[i % per];
        let mut algo = scheme.build(video, qoe.vmaf_model);
        let session = sim.run(algo.as_mut(), &video.manifest, trace);
        abr_sim::metrics::evaluate(&session, video, &video.classification, qoe)
    });
    let mut out = BTreeMap::new();
    for (k, scheme) in schemes.iter().enumerate() {
        let sessions = flat[k * per..(k + 1) * per].to_vec();
        harness::journal_scheme_summary(scheme.name(), video.name(), &sessions);
        out.insert(*scheme, sessions);
    }
    out
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Run the registry experiments with the given ids, in the given order,
/// under one journal. Unknown ids fail before anything runs. Progress goes
/// to stderr (stdout belongs to the experiments); the journal path is
/// printed at the end.
pub fn run_ids(ids: &[&str]) -> io::Result<()> {
    let registry = experiments::registry();
    let selected: Vec<_> = ids
        .iter()
        .map(|want| {
            registry
                .iter()
                .find(|(id, _, _)| id == want)
                .copied()
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("unknown experiment id `{want}`"),
                    )
                })
        })
        .collect::<io::Result<_>>()?;
    let total = selected.len();
    journal::begin();
    let outcome = (|| {
        for (k, (id, description, entry)) in selected.iter().enumerate() {
            eprintln!("[{}/{total}] {id}: {description}", k + 1);
            journal::begin_experiment(id, description);
            let started = journal::Stopwatch::start();
            entry()?;
            journal::end_experiment();
            eprintln!(
                "[{}/{total}] {id}: done in {:.1}s",
                k + 1,
                started.seconds()
            );
        }
        Ok(())
    })();
    // Always write the journal — a failed run journals what it completed.
    if let Some(path) = journal::finish()? {
        eprintln!("journal: {}", path.display());
    }
    outcome
}

/// Run every registry experiment: prefetch all artifacts in parallel, then
/// drive the full list through [`run_ids`] under one journal.
pub fn run_all() -> io::Result<()> {
    let started = journal::Stopwatch::start();
    eprintln!("prefetching dataset videos and trace corpora...");
    prefetch();
    eprintln!("prefetch done in {:.1}s", started.seconds());
    let registry = experiments::registry();
    let ids: Vec<&str> = registry.iter().map(|(id, _, _)| *id).collect();
    run_ids(&ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn video_cache_returns_same_arc_and_counts_builds_once() {
        let before = video_generations();
        let a = video("ToS-ffmpeg-h264");
        let after_first = video_generations();
        let b = video("ToS-ffmpeg-h264");
        assert!(Arc::ptr_eq(&a, &b), "same key must share one Arc");
        // The first call built at most once (another test may have warmed
        // the entry already); the second call must not build at all.
        assert!(after_first - before <= 1);
        assert_eq!(video_generations(), after_first);
        assert_eq!(a.video.name(), "ToS-ffmpeg-h264");
        assert_eq!(a.manifest.n_chunks(), a.video.n_chunks());
    }

    #[test]
    fn trace_cache_returns_same_arc_and_counts_builds_once() {
        let before = trace_generations();
        let a = traces_n(TraceSet::Lte, 5);
        let after_first = trace_generations();
        let b = traces_n(TraceSet::Lte, 5);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one Arc");
        assert!(after_first - before <= 1);
        assert_eq!(trace_generations(), after_first);
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn distinct_seeds_give_distinct_data() {
        let lte = traces_n(TraceSet::Lte, 3);
        let fcc = traces_n(TraceSet::Fcc, 3);
        assert!(!Arc::ptr_eq(&lte, &fcc));
        assert_ne!(lte.as_slice(), fcc.as_slice());
        // Distinct counts are distinct cache entries too.
        let lte4 = traces_n(TraceSet::Lte, 4);
        assert!(!Arc::ptr_eq(&lte, &lte4));
        // Two videos with different content seeds differ.
        let ed = video("ED-ffmpeg-h264");
        let bbb = video("BBB-ffmpeg-h264");
        assert_ne!(
            ed.video.track(0).chunk_bytes(0),
            bbb.video.track(0).chunk_bytes(0)
        );
    }

    #[test]
    fn serve_provider_is_one_shared_instance() {
        let a = serve_provider();
        let b = serve_provider();
        assert!(Arc::ptr_eq(&a, &b), "all callers share one provider");
    }

    #[test]
    fn scheduler_preserves_index_order_and_covers_all_indices() {
        for threads in [1, 2, 7] {
            let out = run_indexed_on(threads, 23, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(run_indexed(0, |i| i).is_empty());
    }
}
