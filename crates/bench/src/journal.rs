//! Structured run journal: one JSON document per engine run under
//! `results/journal/<run_id>.json`.
//!
//! The journal answers "what exactly did this run compute, and how long did
//! it take?" without re-reading stdout. It records, per experiment: wall
//! time, the trace-set seeds actually consumed, the trace count, the scheme
//! set, and one summary line per `(scheme, video)` evaluation. Run-level
//! metadata (run id, git revision, total wall time, `TRACES` setting) frames
//! the whole document.
//!
//! # Lifecycle
//!
//! The journal is a process-wide singleton driven by the engine
//! ([`crate::engine::run_ids`]):
//!
//! 1. [`begin`] activates it (idempotent — nested engines reuse the outer
//!    journal),
//! 2. [`begin_experiment`]/[`end_experiment`] bracket each experiment,
//! 3. the harness runners call [`note_scheme_run`] and the engine's trace
//!    cache calls [`note_traces`] as work happens (both are no-ops while no
//!    journal is active, so library users pay nothing),
//! 4. [`finish`] serializes the document and returns its path.
//!
//! # Schema
//!
//! ```json
//! {
//!   "run_id": "run-1754500000-1234",
//!   "git_rev": "76ca72f",
//!   "trace_count": 200,
//!   "wall_time_s": 812.4,
//!   "experiments": [
//!     {
//!       "id": "fig08",
//!       "description": "Scheme comparison, 5 metric CDFs (Fig. 8)",
//!       "wall_time_s": 96.1,
//!       "trace_count": 200,
//!       "trace_sets": [ {"set": "LTE", "seed": 42, "count": 200} ],
//!       "schemes": ["CAVA", "MPC", "..."],
//!       "scheme_runs": [
//!         {"scheme": "CAVA", "video": "ED-ffmpeg-h264", "sessions": 200,
//!          "mean_quality": 78.2, "mean_rebuffer_s": 0.4}
//!       ]
//!     }
//!   ]
//! }
//! ```

use serde::{Deserialize, Serialize};
use std::io;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Wall-clock stopwatch for run/experiment timing.
///
/// This module is the **only** place in the simulation workspace allowed to
/// read the wall clock (abr-lint rule R1, allowlisted here): journals and
/// progress lines report real elapsed time, while everything the evaluation
/// *measures* flows from the simulated clock. Engine code times itself
/// through this type instead of touching `std::time` directly.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Stopwatch {
        Stopwatch(Instant::now())
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn seconds(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

/// One `(scheme, video)` evaluation inside an experiment: how many sessions
/// ran and the headline means.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemeRun {
    /// Scheme display name (e.g. `"CAVA"`, or `"custom"` for factory
    /// sweeps).
    pub scheme: String,
    /// Full video name (e.g. `"ED-ffmpeg-h264"`).
    pub video: String,
    /// Number of sessions (= traces) evaluated.
    pub sessions: usize,
    /// Mean all-chunk quality across the sessions.
    pub mean_quality: f64,
    /// Mean total rebuffering (seconds) across the sessions.
    pub mean_rebuffer_s: f64,
}

/// One trace corpus consumed by an experiment: which set, its base seed,
/// and how many traces were generated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSetUse {
    /// Corpus name (`"LTE"` or `"FCC"`).
    pub set: String,
    /// Base seed the corpus was generated from.
    pub seed: u64,
    /// Number of traces generated.
    pub count: usize,
}

/// Everything journaled about one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Registry id (e.g. `"fig08"`).
    pub id: String,
    /// Registry description.
    pub description: String,
    /// Wall time of the experiment body, in seconds.
    pub wall_time_s: f64,
    /// The `TRACES` setting in effect (paper default 200).
    pub trace_count: usize,
    /// Trace corpora consumed (deduplicated, in first-use order).
    pub trace_sets: Vec<TraceSetUse>,
    /// Scheme set evaluated (deduplicated, in first-run order).
    pub schemes: Vec<String>,
    /// Every `(scheme, video)` evaluation, in execution order.
    pub scheme_runs: Vec<SchemeRun>,
}

/// The whole run: metadata plus one record per experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunJournal {
    /// Unique id, also the journal's file stem: `run-<unix-secs>-<pid>`.
    pub run_id: String,
    /// `git rev-parse --short HEAD` at run time, or `"unknown"`.
    pub git_rev: String,
    /// The `TRACES` setting in effect for the run.
    pub trace_count: usize,
    /// Total wall time from [`begin`] to [`finish`], in seconds.
    pub wall_time_s: f64,
    /// One record per experiment, in execution order.
    pub experiments: Vec<ExperimentRecord>,
}

struct ActiveJournal {
    journal: RunJournal,
    run_started: Instant,
    current: Option<(ExperimentRecord, Instant)>,
    /// Nesting depth: `begin` is idempotent so a bin that calls
    /// `engine::run_ids` from inside another engine run reuses the outer
    /// journal; only the outermost `finish` writes the file.
    depth: usize,
}

static ACTIVE: Mutex<Option<ActiveJournal>> = Mutex::new(None);

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn new_run_id() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    format!("run-{secs}-{}", std::process::id())
}

/// Activate the process-wide journal. Idempotent: if one is already active,
/// this only increments the nesting depth so the matching [`finish`] is a
/// no-op and the outermost caller writes the file.
pub fn begin() {
    let mut guard = ACTIVE.lock().expect("journal lock");
    match guard.as_mut() {
        Some(active) => active.depth += 1,
        None => {
            *guard = Some(ActiveJournal {
                journal: RunJournal {
                    run_id: new_run_id(),
                    git_rev: git_rev(),
                    trace_count: crate::harness::trace_count(),
                    wall_time_s: 0.0,
                    experiments: Vec::new(),
                },
                run_started: Instant::now(),
                current: None,
                depth: 1,
            });
        }
    }
}

/// Open an experiment record; subsequent [`note_scheme_run`]/[`note_traces`]
/// calls attach to it until [`end_experiment`]. No-op when no journal is
/// active.
pub fn begin_experiment(id: &str, description: &str) {
    let mut guard = ACTIVE.lock().expect("journal lock");
    if let Some(active) = guard.as_mut() {
        active.current = Some((
            ExperimentRecord {
                id: id.to_string(),
                description: description.to_string(),
                wall_time_s: 0.0,
                trace_count: crate::harness::trace_count(),
                trace_sets: Vec::new(),
                schemes: Vec::new(),
                scheme_runs: Vec::new(),
            },
            Instant::now(),
        ));
    }
}

/// Close the open experiment record, stamping its wall time and deriving
/// the scheme set from the runs. No-op when nothing is open.
pub fn end_experiment() {
    let mut guard = ACTIVE.lock().expect("journal lock");
    if let Some(active) = guard.as_mut() {
        if let Some((mut record, started)) = active.current.take() {
            record.wall_time_s = started.elapsed().as_secs_f64();
            for run in &record.scheme_runs {
                if !record.schemes.contains(&run.scheme) {
                    record.schemes.push(run.scheme.clone());
                }
            }
            active.journal.experiments.push(record);
        }
    }
}

/// Attach one `(scheme, video)` evaluation to the open experiment. Called
/// by the harness runners; a no-op while no journal/experiment is active.
pub fn note_scheme_run(
    scheme: &str,
    video: &str,
    sessions: usize,
    mean_quality: f64,
    mean_rebuffer_s: f64,
) {
    let mut guard = ACTIVE.lock().expect("journal lock");
    if let Some(active) = guard.as_mut() {
        if let Some((record, _)) = active.current.as_mut() {
            record.scheme_runs.push(SchemeRun {
                scheme: scheme.to_string(),
                video: video.to_string(),
                sessions,
                mean_quality,
                mean_rebuffer_s,
            });
        }
    }
}

/// Attach a trace-corpus use (set name, base seed, count) to the open
/// experiment, deduplicated. Called by the engine's trace cache; a no-op
/// while no journal/experiment is active.
pub fn note_traces(set: &str, seed: u64, count: usize) {
    let mut guard = ACTIVE.lock().expect("journal lock");
    if let Some(active) = guard.as_mut() {
        if let Some((record, _)) = active.current.as_mut() {
            let entry = TraceSetUse {
                set: set.to_string(),
                seed,
                count,
            };
            if !record.trace_sets.contains(&entry) {
                record.trace_sets.push(entry);
            }
        }
    }
}

/// Deactivate the journal. The outermost call serializes the document to
/// `<results_dir>/journal/<run_id>.json` and returns the path; nested calls
/// (and calls with no active journal) return `Ok(None)`.
pub fn finish() -> io::Result<Option<PathBuf>> {
    let taken = {
        let mut guard = ACTIVE.lock().expect("journal lock");
        match guard.as_mut() {
            None => return Ok(None),
            Some(active) if active.depth > 1 => {
                active.depth -= 1;
                return Ok(None);
            }
            Some(_) => guard.take(),
        }
    };
    let mut active = taken.expect("checked above");
    // An experiment left open (e.g. because its body returned an error) is
    // still recorded, so partial runs journal what they did complete.
    if let Some((mut record, started)) = active.current.take() {
        record.wall_time_s = started.elapsed().as_secs_f64();
        for run in &record.scheme_runs {
            if !record.schemes.contains(&run.scheme) {
                record.schemes.push(run.scheme.clone());
            }
        }
        active.journal.experiments.push(record);
    }
    active.journal.wall_time_s = active.run_started.elapsed().as_secs_f64();
    let dir = crate::results_dir().join("journal");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{}.json", active.journal.run_id));
    let json = serde_json::to_string_pretty(&active.journal).map_err(io::Error::other)?;
    std::fs::write(&path, json)?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunJournal {
        RunJournal {
            run_id: "run-0-1".to_string(),
            git_rev: "abc1234".to_string(),
            trace_count: 200,
            wall_time_s: 12.5,
            experiments: vec![ExperimentRecord {
                id: "fig08".to_string(),
                description: "Scheme comparison".to_string(),
                wall_time_s: 3.25,
                trace_count: 200,
                trace_sets: vec![TraceSetUse {
                    set: "LTE".to_string(),
                    seed: 42,
                    count: 200,
                }],
                schemes: vec!["CAVA".to_string(), "MPC".to_string()],
                scheme_runs: vec![SchemeRun {
                    scheme: "CAVA".to_string(),
                    video: "ED-ffmpeg-h264".to_string(),
                    sessions: 200,
                    mean_quality: 78.25,
                    mean_rebuffer_s: 0.5,
                }],
            }],
        }
    }

    #[test]
    fn journal_round_trips_through_json() {
        let journal = sample();
        let json = serde_json::to_string_pretty(&journal).expect("serialize");
        let back: RunJournal = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, journal);
    }

    #[test]
    fn journal_json_has_expected_fields() {
        let json = serde_json::to_string(&sample()).expect("serialize");
        for key in [
            "\"run_id\"",
            "\"git_rev\"",
            "\"wall_time_s\"",
            "\"trace_sets\"",
            "\"seed\"",
            "\"schemes\"",
            "\"scheme_runs\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
