//! Scheme registry, trace sets, and the parallel session runner.

use abr_baselines::{Bba1, Bola, BolaBitrateView, Festive, Mpc, PandaCq, Pia, Rba};
use abr_sim::metrics::{evaluate, QoeConfig, QoeMetrics};
use abr_sim::{AbrAlgorithm, PlayerConfig, SessionResult, Simulator};
use cava_core::{Cava, CavaConfig};
use net_trace::fcc::{fcc_traces, FccConfig};
use net_trace::lte::{lte_traces, LteConfig};
use net_trace::Trace;
use sim_report::Cdf;
use vbr_video::quality::VmafModel;
use vbr_video::{Classification, Manifest, Video};

/// Number of traces per set: the paper uses 200; override with `TRACES` for
/// quick iteration.
pub fn trace_count() -> usize {
    std::env::var("TRACES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

/// Every scheme the evaluation runs. `build` instantiates a fresh algorithm
/// (one per worker thread — algorithms are stateful within a session).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    Cava,
    CavaP1,
    CavaP12,
    Mpc,
    RobustMpc,
    PandaMaxSum,
    PandaMaxMin,
    Rba,
    Bba1,
    Pia,
    Festive,
    Bola,
    BolaEPeak,
    BolaEAvg,
    BolaESeg,
}

impl SchemeKind {
    /// The paper's §6.3 comparison set (Fig. 8).
    pub const FIG8: [SchemeKind; 5] = [
        SchemeKind::Cava,
        SchemeKind::Mpc,
        SchemeKind::RobustMpc,
        SchemeKind::PandaMaxSum,
        SchemeKind::PandaMaxMin,
    ];

    /// The §6.4 ablation set (Fig. 10).
    pub const ABLATION: [SchemeKind; 3] =
        [SchemeKind::CavaP1, SchemeKind::CavaP12, SchemeKind::Cava];

    /// The §6.8 dash.js set (Fig. 11).
    pub const FIG11: [SchemeKind; 4] = [
        SchemeKind::Cava,
        SchemeKind::BolaEAvg,
        SchemeKind::BolaEPeak,
        SchemeKind::BolaESeg,
    ];

    /// Display name matching the paper's.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Cava => "CAVA",
            SchemeKind::CavaP1 => "CAVA-p1",
            SchemeKind::CavaP12 => "CAVA-p12",
            SchemeKind::Mpc => "MPC",
            SchemeKind::RobustMpc => "RobustMPC",
            SchemeKind::PandaMaxSum => "PANDA/CQ max-sum",
            SchemeKind::PandaMaxMin => "PANDA/CQ max-min",
            SchemeKind::Rba => "RBA",
            SchemeKind::Bba1 => "BBA-1",
            SchemeKind::Pia => "PIA",
            SchemeKind::Festive => "FESTIVE",
            SchemeKind::Bola => "BOLA",
            SchemeKind::BolaEPeak => "BOLA-E (peak)",
            SchemeKind::BolaEAvg => "BOLA-E (avg)",
            SchemeKind::BolaESeg => "BOLA-E (seg)",
        }
    }

    /// Instantiate the scheme. PANDA/CQ receives the video's quality table
    /// under `model` (its granted side information, §6.1); every other
    /// scheme sees only the manifest.
    pub fn build(self, video: &Video, model: VmafModel) -> Box<dyn AbrAlgorithm> {
        match self {
            SchemeKind::Cava => Box::new(Cava::paper_default()),
            SchemeKind::CavaP1 => Box::new(Cava::p1()),
            SchemeKind::CavaP12 => Box::new(Cava::p12()),
            SchemeKind::Mpc => Box::new(Mpc::mpc()),
            SchemeKind::RobustMpc => Box::new(Mpc::robust()),
            SchemeKind::PandaMaxSum => Box::new(PandaCq::max_sum(video, model)),
            SchemeKind::PandaMaxMin => Box::new(PandaCq::max_min(video, model)),
            SchemeKind::Rba => Box::new(Rba::paper_default()),
            SchemeKind::Bba1 => Box::new(Bba1::paper_default()),
            SchemeKind::Pia => Box::new(Pia::paper_default()),
            SchemeKind::Festive => Box::new(Festive::paper_default()),
            SchemeKind::Bola => Box::new(Bola::bola()),
            SchemeKind::BolaEPeak => Box::new(Bola::bola_e(BolaBitrateView::Peak)),
            SchemeKind::BolaEAvg => Box::new(Bola::bola_e(BolaBitrateView::Average)),
            SchemeKind::BolaESeg => Box::new(Bola::bola_e(BolaBitrateView::Segment)),
        }
    }

    /// Build with a custom CAVA configuration (parameter sweeps). Only valid
    /// for the CAVA kinds.
    pub fn build_cava(config: CavaConfig) -> Box<dyn AbrAlgorithm> {
        Box::new(Cava::new(config))
    }
}

/// The two trace corpora of §6.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceSet {
    Lte,
    Fcc,
}

impl TraceSet {
    /// Generate the corpus (fixed base seeds → fully reproducible).
    pub fn generate(self, count: usize) -> Vec<Trace> {
        match self {
            TraceSet::Lte => lte_traces(count, 42, &LteConfig::default()),
            TraceSet::Fcc => fcc_traces(count, 4242, &FccConfig::default()),
        }
    }

    /// The VMAF viewing model the paper pairs with this corpus (§6.1).
    pub fn qoe_config(self) -> QoeConfig {
        match self {
            TraceSet::Lte => QoeConfig::lte(),
            TraceSet::Fcc => QoeConfig::fcc(),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TraceSet::Lte => "LTE",
            TraceSet::Fcc => "FCC",
        }
    }
}

/// Run one scheme over every trace, in parallel, and evaluate each session.
/// Returns per-trace metrics in trace order.
pub fn run_scheme(
    scheme: SchemeKind,
    video: &Video,
    traces: &[Trace],
    qoe: &QoeConfig,
    player: &PlayerConfig,
) -> Vec<QoeMetrics> {
    run_with_factory(
        &|| scheme.build(video, qoe.vmaf_model),
        video,
        traces,
        qoe,
        player,
    )
}

/// Run with a custom algorithm factory (parameter sweeps). The factory is
/// invoked once per worker thread.
pub fn run_with_factory(
    factory: &(dyn Fn() -> Box<dyn AbrAlgorithm> + Sync),
    video: &Video,
    traces: &[Trace],
    qoe: &QoeConfig,
    player: &PlayerConfig,
) -> Vec<QoeMetrics> {
    let manifest = Manifest::from_video(video);
    let classification = Classification::from_video(video);
    let sim = Simulator::new(*player);
    let n_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(traces.len().max(1));
    let chunk = traces.len().div_ceil(n_threads);
    let mut results: Vec<Option<QoeMetrics>> = vec![None; traces.len()];
    std::thread::scope(|scope| {
        for (slab_idx, (trace_slab, result_slab)) in traces
            .chunks(chunk)
            .zip(results.chunks_mut(chunk))
            .enumerate()
        {
            let manifest = &manifest;
            let classification = &classification;
            let sim = &sim;
            let _ = slab_idx;
            scope.spawn(move || {
                let mut algo = factory();
                for (trace, slot) in trace_slab.iter().zip(result_slab.iter_mut()) {
                    let session = sim.run(algo.as_mut(), manifest, trace);
                    *slot = Some(evaluate(&session, video, classification, qoe));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every slot filled by its worker"))
        .collect()
}

/// Run one scheme and keep the raw sessions (for per-chunk analyses).
pub fn run_sessions(
    scheme: SchemeKind,
    video: &Video,
    traces: &[Trace],
    qoe: &QoeConfig,
    player: &PlayerConfig,
) -> Vec<SessionResult> {
    let manifest = Manifest::from_video(video);
    let sim = Simulator::new(*player);
    let n_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(traces.len().max(1));
    let chunk = traces.len().div_ceil(n_threads);
    let mut results: Vec<Option<SessionResult>> = vec![None; traces.len()];
    std::thread::scope(|scope| {
        for (trace_slab, result_slab) in traces.chunks(chunk).zip(results.chunks_mut(chunk)) {
            let manifest = &manifest;
            let sim = &sim;
            scope.spawn(move || {
                let mut algo = scheme.build(video, qoe.vmaf_model);
                for (trace, slot) in trace_slab.iter().zip(result_slab.iter_mut()) {
                    *slot = Some(sim.run(algo.as_mut(), manifest, trace));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// The paper's five evaluation metrics plus supporting ones, as selectors
/// over [`QoeMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    Q4Quality,
    Q13Quality,
    AllQuality,
    LowQualityPct,
    RebufferS,
    QualityChange,
    DataUsageMb,
    MeanLevel,
}

impl Metric {
    /// Extract the metric value from one session's metrics.
    pub fn of(self, m: &QoeMetrics) -> f64 {
        match self {
            Metric::Q4Quality => m.q4_quality_mean,
            Metric::Q13Quality => m.q13_quality_mean,
            Metric::AllQuality => m.all_quality_mean,
            Metric::LowQualityPct => m.low_quality_pct,
            Metric::RebufferS => m.rebuffer_s,
            Metric::QualityChange => m.avg_quality_change,
            Metric::DataUsageMb => m.data_usage_bytes as f64 / 1.0e6,
            Metric::MeanLevel => m.mean_level,
        }
    }

    /// Paper label.
    pub fn label(self) -> &'static str {
        match self {
            Metric::Q4Quality => "Quality of Q4 chunks",
            Metric::Q13Quality => "Quality of Q1-Q3 chunks",
            Metric::AllQuality => "Quality of all chunks",
            Metric::LowQualityPct => "Low-quality chunks (%)",
            Metric::RebufferS => "Total rebuffering (s)",
            Metric::QualityChange => "Avg quality change (/chunk)",
            Metric::DataUsageMb => "Data usage (MB)",
            Metric::MeanLevel => "Mean track level",
        }
    }

    /// Whether lower values are better (true for all but the quality
    /// metrics).
    pub fn lower_is_better(self) -> bool {
        !matches!(
            self,
            Metric::Q4Quality | Metric::Q13Quality | Metric::AllQuality | Metric::MeanLevel
        )
    }
}

/// Mean of a metric across sessions.
pub fn mean_of(metric: Metric, sessions: &[QoeMetrics]) -> f64 {
    assert!(!sessions.is_empty());
    sessions.iter().map(|m| metric.of(m)).sum::<f64>() / sessions.len() as f64
}

/// CDF of a metric across sessions.
pub fn metric_cdf(metric: Metric, sessions: &[QoeMetrics]) -> Cdf {
    let values: Vec<f64> = sessions.iter().map(|m| metric.of(m)).collect();
    Cdf::new(&values).expect("non-empty, non-NaN metrics")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbr_video::Dataset;

    #[test]
    fn scheme_names_unique() {
        let all = [
            SchemeKind::Cava,
            SchemeKind::CavaP1,
            SchemeKind::CavaP12,
            SchemeKind::Mpc,
            SchemeKind::RobustMpc,
            SchemeKind::PandaMaxSum,
            SchemeKind::PandaMaxMin,
            SchemeKind::Rba,
            SchemeKind::Bba1,
            SchemeKind::Pia,
            SchemeKind::Festive,
            SchemeKind::Bola,
            SchemeKind::BolaEPeak,
            SchemeKind::BolaEAvg,
            SchemeKind::BolaESeg,
        ];
        let mut names: Vec<&str> = all.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn parallel_runner_matches_serial() {
        let video = Dataset::ed_youtube_h264();
        let traces = TraceSet::Lte.generate(6);
        let qoe = TraceSet::Lte.qoe_config();
        let player = PlayerConfig::default();
        let parallel = run_scheme(SchemeKind::Rba, &video, &traces, &qoe, &player);
        // Serial reference.
        let manifest = Manifest::from_video(&video);
        let classification = Classification::from_video(&video);
        let sim = Simulator::new(player);
        for (i, trace) in traces.iter().enumerate() {
            let mut algo = SchemeKind::Rba.build(&video, qoe.vmaf_model);
            let session = sim.run(algo.as_mut(), &manifest, trace);
            let serial = evaluate(&session, &video, &classification, &qoe);
            assert_eq!(parallel[i], serial, "trace {i}");
        }
    }

    #[test]
    fn trace_sets_generate_requested_count() {
        assert_eq!(TraceSet::Lte.generate(7).len(), 7);
        assert_eq!(TraceSet::Fcc.generate(3).len(), 3);
    }

    #[test]
    fn metric_selectors_cover_qoe() {
        let video = Dataset::ed_youtube_h264();
        let traces = TraceSet::Lte.generate(2);
        let qoe = TraceSet::Lte.qoe_config();
        let sessions = run_scheme(
            SchemeKind::Bba1,
            &video,
            &traces,
            &qoe,
            &PlayerConfig::default(),
        );
        for metric in [
            Metric::Q4Quality,
            Metric::Q13Quality,
            Metric::AllQuality,
            Metric::LowQualityPct,
            Metric::RebufferS,
            Metric::QualityChange,
            Metric::DataUsageMb,
            Metric::MeanLevel,
        ] {
            let v = mean_of(metric, &sessions);
            assert!(v.is_finite(), "{metric:?}");
            let cdf = metric_cdf(metric, &sessions);
            assert_eq!(cdf.len(), 2);
            assert!(!metric.label().is_empty());
        }
        assert!(Metric::RebufferS.lower_is_better());
        assert!(!Metric::Q4Quality.lower_is_better());
    }
}
