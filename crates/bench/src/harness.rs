//! Scheme registry, trace sets, and the session runners.
//!
//! The runners ([`run_scheme`], [`run_with_factory`], [`run_sessions`])
//! execute one algorithm over a trace corpus on the engine's shared
//! dynamic scheduler ([`crate::engine::run_indexed`]). Every session gets a
//! **fresh** algorithm instance — ABR algorithms are stateful within a
//! session, and reusing one across sessions leaks estimator state from one
//! trace into the next, making results depend on how traces were
//! partitioned over threads. Building per session makes every run
//! byte-identical regardless of worker count (see the
//! `partitioning_independence` regression test).

use abr_baselines::{Bba1, Bola, BolaBitrateView, Festive, Mpc, PandaCq, Pia, Rba};
use abr_sim::metrics::{evaluate, QoeConfig, QoeMetrics};
use abr_sim::{AbrAlgorithm, PlayerConfig, SessionResult, Simulator};
use cava_core::{Cava, CavaConfig};
use net_trace::fcc::{fcc_traces, FccConfig};
use net_trace::fiveg::{fiveg_traces, FiveGConfig};
use net_trace::lte::{lte_traces, LteConfig};
use net_trace::satellite::{satellite_traces, SatelliteConfig};
use net_trace::Trace;
use sim_report::Cdf;
use vbr_video::quality::VmafModel;
use vbr_video::Video;

use crate::engine::{self, PreparedVideo};
use crate::journal;

/// Number of traces per set: the paper uses 200; override with `TRACES` for
/// quick iteration.
pub fn trace_count() -> usize {
    std::env::var("TRACES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

/// Every scheme the evaluation runs. `build` instantiates a fresh algorithm
/// (one per session — algorithms are stateful within a session). `Ord`
/// follows declaration order and keys the ordered grid maps
/// ([`crate::engine::run_grid`]), so iteration over results is
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SchemeKind {
    /// Full CAVA (all three design principles, §5).
    Cava,
    /// CAVA ablation: principle 1 only (§6.4).
    CavaP1,
    /// CAVA ablation: principles 1+2 (§6.4).
    CavaP12,
    /// MPC (Yin et al.), nominal predictions.
    Mpc,
    /// RobustMPC: MPC with conservative prediction discounting.
    RobustMpc,
    /// PANDA/CQ, max-sum objective (quality side information, §6.1).
    PandaMaxSum,
    /// PANDA/CQ, max-min objective.
    PandaMaxMin,
    /// Rate-based adaptation baseline.
    Rba,
    /// Buffer-based adaptation (BBA-1).
    Bba1,
    /// PIA: PID-control adaptation for CBR (§5.1 lineage).
    Pia,
    /// FESTIVE.
    Festive,
    /// Plain BOLA.
    Bola,
    /// BOLA-E seeing peak bitrates (§6.8).
    BolaEPeak,
    /// BOLA-E seeing average bitrates (§6.8).
    BolaEAvg,
    /// BOLA-E seeing per-segment sizes (§6.8).
    BolaESeg,
}

impl SchemeKind {
    /// The paper's §6.3 comparison set (Fig. 8).
    pub const FIG8: [SchemeKind; 5] = [
        SchemeKind::Cava,
        SchemeKind::Mpc,
        SchemeKind::RobustMpc,
        SchemeKind::PandaMaxSum,
        SchemeKind::PandaMaxMin,
    ];

    /// The §6.4 ablation set (Fig. 10).
    pub const ABLATION: [SchemeKind; 3] =
        [SchemeKind::CavaP1, SchemeKind::CavaP12, SchemeKind::Cava];

    /// The §6.8 dash.js set (Fig. 11).
    pub const FIG11: [SchemeKind; 4] = [
        SchemeKind::Cava,
        SchemeKind::BolaEAvg,
        SchemeKind::BolaEPeak,
        SchemeKind::BolaESeg,
    ];

    /// Display name matching the paper's.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Cava => "CAVA",
            SchemeKind::CavaP1 => "CAVA-p1",
            SchemeKind::CavaP12 => "CAVA-p12",
            SchemeKind::Mpc => "MPC",
            SchemeKind::RobustMpc => "RobustMPC",
            SchemeKind::PandaMaxSum => "PANDA/CQ max-sum",
            SchemeKind::PandaMaxMin => "PANDA/CQ max-min",
            SchemeKind::Rba => "RBA",
            SchemeKind::Bba1 => "BBA-1",
            SchemeKind::Pia => "PIA",
            SchemeKind::Festive => "FESTIVE",
            SchemeKind::Bola => "BOLA",
            SchemeKind::BolaEPeak => "BOLA-E (peak)",
            SchemeKind::BolaEAvg => "BOLA-E (avg)",
            SchemeKind::BolaESeg => "BOLA-E (seg)",
        }
    }

    /// Instantiate the scheme. PANDA/CQ receives the video's quality table
    /// under `model` (its granted side information, §6.1); every other
    /// scheme sees only the manifest.
    pub fn build(self, video: &Video, model: VmafModel) -> Box<dyn AbrAlgorithm> {
        match self {
            SchemeKind::Cava => Box::new(Cava::paper_default()),
            SchemeKind::CavaP1 => Box::new(Cava::p1()),
            SchemeKind::CavaP12 => Box::new(Cava::p12()),
            SchemeKind::Mpc => Box::new(Mpc::mpc()),
            SchemeKind::RobustMpc => Box::new(Mpc::robust()),
            SchemeKind::PandaMaxSum => Box::new(PandaCq::max_sum(video, model)),
            SchemeKind::PandaMaxMin => Box::new(PandaCq::max_min(video, model)),
            SchemeKind::Rba => Box::new(Rba::paper_default()),
            SchemeKind::Bba1 => Box::new(Bba1::paper_default()),
            SchemeKind::Pia => Box::new(Pia::paper_default()),
            SchemeKind::Festive => Box::new(Festive::paper_default()),
            SchemeKind::Bola => Box::new(Bola::bola()),
            SchemeKind::BolaEPeak => Box::new(Bola::bola_e(BolaBitrateView::Peak)),
            SchemeKind::BolaEAvg => Box::new(Bola::bola_e(BolaBitrateView::Average)),
            SchemeKind::BolaESeg => Box::new(Bola::bola_e(BolaBitrateView::Segment)),
        }
    }

    /// Build with a custom CAVA configuration (parameter sweeps). Only valid
    /// for the CAVA kinds.
    pub fn build_cava(config: CavaConfig) -> Box<dyn AbrAlgorithm> {
        Box::new(Cava::new(config))
    }
}

/// The two trace corpora of §6.1 plus the two extension regimes the
/// population workload mixes in (5G and GEO satellite).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TraceSet {
    /// The LTE corpus (base seed 42).
    Lte,
    /// The FCC broadband corpus (base seed 4242).
    Fcc,
    /// The high-variance 5G corpus (base seed 424242).
    FiveG,
    /// The GEO-satellite corpus (base seed 42424242).
    Satellite,
}

impl TraceSet {
    /// The corpus' fixed base seed (journaled with every run).
    pub fn seed(self) -> u64 {
        match self {
            TraceSet::Lte => 42,
            TraceSet::Fcc => 4242,
            TraceSet::FiveG => 424_242,
            TraceSet::Satellite => 42_424_242,
        }
    }

    /// Generate the corpus (fixed base seeds → fully reproducible). Most
    /// callers should go through [`crate::engine::traces`], which memoizes
    /// the result.
    pub fn generate(self, count: usize) -> Vec<Trace> {
        match self {
            TraceSet::Lte => lte_traces(count, self.seed(), &LteConfig::default()),
            TraceSet::Fcc => fcc_traces(count, self.seed(), &FccConfig::default()),
            TraceSet::FiveG => fiveg_traces(count, self.seed(), &FiveGConfig::default()),
            TraceSet::Satellite => {
                satellite_traces(count, self.seed(), &SatelliteConfig::default())
            }
        }
    }

    /// The VMAF viewing model paired with this corpus: the cellular
    /// regimes (LTE, 5G) score with the phone model as in §6.1; the
    /// fixed-line regimes (FCC, satellite) with the TV model.
    pub fn qoe_config(self) -> QoeConfig {
        match self {
            TraceSet::Lte | TraceSet::FiveG => QoeConfig::lte(),
            TraceSet::Fcc | TraceSet::Satellite => QoeConfig::fcc(),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TraceSet::Lte => "LTE",
            TraceSet::Fcc => "FCC",
            TraceSet::FiveG => "5G",
            TraceSet::Satellite => "SAT",
        }
    }
}

/// Push one `(scheme, video)` summary to the active journal (no-op when no
/// journal is active).
pub(crate) fn journal_scheme_summary(scheme: &str, video: &str, sessions: &[QoeMetrics]) {
    if sessions.is_empty() {
        return;
    }
    journal::note_scheme_run(
        scheme,
        video,
        sessions.len(),
        mean_of(Metric::AllQuality, sessions),
        mean_of(Metric::RebufferS, sessions),
    );
}

/// Run one scheme over every trace on the shared scheduler and evaluate
/// each session. Returns per-trace metrics in trace order; the summary is
/// journaled.
pub fn run_scheme(
    scheme: SchemeKind,
    video: &PreparedVideo,
    traces: &[Trace],
    qoe: &QoeConfig,
    player: &PlayerConfig,
) -> Vec<QoeMetrics> {
    let sessions = run_with_factory(
        &|| scheme.build(video, qoe.vmaf_model),
        video,
        traces,
        qoe,
        player,
    );
    journal_scheme_summary(scheme.name(), video.name(), &sessions);
    sessions
}

/// Run with a custom algorithm factory (parameter sweeps). The factory is
/// invoked once **per session**: algorithms are stateful and must not carry
/// estimator state from one trace into the next.
pub fn run_with_factory(
    factory: &(dyn Fn() -> Box<dyn AbrAlgorithm> + Sync),
    video: &PreparedVideo,
    traces: &[Trace],
    qoe: &QoeConfig,
    player: &PlayerConfig,
) -> Vec<QoeMetrics> {
    run_with_factory_on(
        engine::default_threads(traces.len()),
        factory,
        video,
        traces,
        qoe,
        player,
    )
}

/// [`run_with_factory`] with an explicit worker count. With fresh
/// algorithms per session, the result is byte-identical for every
/// `threads` value — the regression test pins `threads = 1` against many.
pub fn run_with_factory_on(
    threads: usize,
    factory: &(dyn Fn() -> Box<dyn AbrAlgorithm> + Sync),
    video: &PreparedVideo,
    traces: &[Trace],
    qoe: &QoeConfig,
    player: &PlayerConfig,
) -> Vec<QoeMetrics> {
    let sim = Simulator::new(*player);
    engine::run_indexed_on(threads, traces.len(), |i| {
        let mut algo = factory();
        let session = sim.run(algo.as_mut(), &video.manifest, &traces[i]);
        evaluate(&session, video, &video.classification, qoe)
    })
}

/// Run one scheme and keep the raw sessions (for per-chunk analyses). Each
/// session gets a fresh algorithm, like [`run_scheme`].
pub fn run_sessions(
    scheme: SchemeKind,
    video: &PreparedVideo,
    traces: &[Trace],
    qoe: &QoeConfig,
    player: &PlayerConfig,
) -> Vec<SessionResult> {
    let sim = Simulator::new(*player);
    engine::run_indexed(traces.len(), |i| {
        let mut algo = scheme.build(video, qoe.vmaf_model);
        sim.run(algo.as_mut(), &video.manifest, &traces[i])
    })
}

/// The paper's five evaluation metrics plus supporting ones, as selectors
/// over [`QoeMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Mean quality of Q4 (hardest) chunks.
    Q4Quality,
    /// Mean quality of Q1–Q3 chunks.
    Q13Quality,
    /// Mean quality of all chunks.
    AllQuality,
    /// Percentage of chunks below the low-quality threshold.
    LowQualityPct,
    /// Total rebuffering seconds.
    RebufferS,
    /// Average per-chunk quality change.
    QualityChange,
    /// Total data usage in megabytes.
    DataUsageMb,
    /// Mean track level.
    MeanLevel,
}

impl Metric {
    /// Extract the metric value from one session's metrics.
    pub fn of(self, m: &QoeMetrics) -> f64 {
        match self {
            Metric::Q4Quality => m.q4_quality_mean,
            Metric::Q13Quality => m.q13_quality_mean,
            Metric::AllQuality => m.all_quality_mean,
            Metric::LowQualityPct => m.low_quality_pct,
            Metric::RebufferS => m.rebuffer_s,
            Metric::QualityChange => m.avg_quality_change,
            Metric::DataUsageMb => m.data_usage_bytes as f64 / 1.0e6,
            Metric::MeanLevel => m.mean_level,
        }
    }

    /// Paper label.
    pub fn label(self) -> &'static str {
        match self {
            Metric::Q4Quality => "Quality of Q4 chunks",
            Metric::Q13Quality => "Quality of Q1-Q3 chunks",
            Metric::AllQuality => "Quality of all chunks",
            Metric::LowQualityPct => "Low-quality chunks (%)",
            Metric::RebufferS => "Total rebuffering (s)",
            Metric::QualityChange => "Avg quality change (/chunk)",
            Metric::DataUsageMb => "Data usage (MB)",
            Metric::MeanLevel => "Mean track level",
        }
    }

    /// Whether lower values are better (true for all but the quality
    /// metrics).
    pub fn lower_is_better(self) -> bool {
        !matches!(
            self,
            Metric::Q4Quality | Metric::Q13Quality | Metric::AllQuality | Metric::MeanLevel
        )
    }
}

/// Mean of a metric across sessions.
pub fn mean_of(metric: Metric, sessions: &[QoeMetrics]) -> f64 {
    assert!(!sessions.is_empty());
    sessions.iter().map(|m| metric.of(m)).sum::<f64>() / sessions.len() as f64
}

/// CDF of a metric across sessions.
pub fn metric_cdf(metric: Metric, sessions: &[QoeMetrics]) -> Cdf {
    let values: Vec<f64> = sessions.iter().map(|m| metric.of(m)).collect();
    Cdf::new(&values).expect("non-empty, non-NaN metrics")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_names_unique() {
        let all = [
            SchemeKind::Cava,
            SchemeKind::CavaP1,
            SchemeKind::CavaP12,
            SchemeKind::Mpc,
            SchemeKind::RobustMpc,
            SchemeKind::PandaMaxSum,
            SchemeKind::PandaMaxMin,
            SchemeKind::Rba,
            SchemeKind::Bba1,
            SchemeKind::Pia,
            SchemeKind::Festive,
            SchemeKind::Bola,
            SchemeKind::BolaEPeak,
            SchemeKind::BolaEAvg,
            SchemeKind::BolaESeg,
        ];
        let mut names: Vec<&str> = all.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn parallel_runner_matches_serial() {
        let video = engine::video("ED-youtube-h264");
        let traces = TraceSet::Lte.generate(6);
        let qoe = TraceSet::Lte.qoe_config();
        let player = PlayerConfig::default();
        let parallel = run_scheme(SchemeKind::Rba, &video, &traces, &qoe, &player);
        // Serial reference with a fresh algorithm per session.
        let sim = Simulator::new(player);
        for (i, trace) in traces.iter().enumerate() {
            let mut algo = SchemeKind::Rba.build(&video, qoe.vmaf_model);
            let session = sim.run(algo.as_mut(), &video.manifest, trace);
            let serial = evaluate(&session, &video, &video.classification, &qoe);
            assert_eq!(parallel[i], serial, "trace {i}");
        }
    }

    #[test]
    fn partitioning_independence() {
        // Regression test for the old slab runner, where one stateful
        // algorithm was reused for a whole thread slab: per-session results
        // depended on how traces were partitioned over workers. With a
        // fresh algorithm per session, every worker count must produce
        // byte-identical metrics. MPC's throughput estimator is the
        // stateful part that leaked across sessions before.
        let video = engine::video("ED-ffmpeg-h264");
        let traces = TraceSet::Lte.generate(7);
        let qoe = TraceSet::Lte.qoe_config();
        let player = PlayerConfig::default();
        let factory: &(dyn Fn() -> Box<dyn abr_sim::AbrAlgorithm> + Sync) =
            &|| SchemeKind::Mpc.build(&video, qoe.vmaf_model);
        let serial = run_with_factory_on(1, factory, &video, &traces, &qoe, &player);
        for threads in [2, 3, 8] {
            let parallel = run_with_factory_on(threads, factory, &video, &traces, &qoe, &player);
            assert_eq!(serial, parallel, "{threads} workers");
        }
    }

    #[test]
    fn trace_sets_generate_requested_count() {
        assert_eq!(TraceSet::Lte.generate(7).len(), 7);
        assert_eq!(TraceSet::Fcc.generate(3).len(), 3);
        assert_eq!(TraceSet::FiveG.generate(3).len(), 3);
        assert_eq!(TraceSet::Satellite.generate(2).len(), 2);
    }

    #[test]
    fn trace_set_seeds_and_names_are_distinct() {
        let all = [
            TraceSet::Lte,
            TraceSet::Fcc,
            TraceSet::FiveG,
            TraceSet::Satellite,
        ];
        let mut seeds: Vec<u64> = all.iter().map(|s| s.seed()).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), all.len());
        let mut names: Vec<&str> = all.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn metric_selectors_cover_qoe() {
        let video = engine::video("ED-youtube-h264");
        let traces = TraceSet::Lte.generate(2);
        let qoe = TraceSet::Lte.qoe_config();
        let sessions = run_scheme(
            SchemeKind::Bba1,
            &video,
            &traces,
            &qoe,
            &PlayerConfig::default(),
        );
        for metric in [
            Metric::Q4Quality,
            Metric::Q13Quality,
            Metric::AllQuality,
            Metric::LowQualityPct,
            Metric::RebufferS,
            Metric::QualityChange,
            Metric::DataUsageMb,
            Metric::MeanLevel,
        ] {
            let v = mean_of(metric, &sessions);
            assert!(v.is_finite(), "{metric:?}");
            let cdf = metric_cdf(metric, &sessions);
            assert_eq!(cdf.len(), 2);
            assert!(!metric.label().is_empty());
        }
        assert!(Metric::RebufferS.lower_is_better());
        assert!(!Metric::Q4Quality.lower_is_better());
    }
}
