// This target sits outside cfg(test), so opt out of the library-only
// workspace lints here explicitly.
#![allow(clippy::unwrap_used, clippy::float_cmp)]

//! Video-substrate throughput: complexity-process generation, per-track
//! encoding, full-video synthesis (tracks + quality tables), and chunk
//! classification. The 16-video dataset is rebuilt from scratch by every
//! experiment binary, so synthesis speed directly bounds harness startup.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use vbr_video::complexity::{Genre, SceneComplexity};
use vbr_video::encoder::{encode_track, EncoderConfig, EncoderSource};
use vbr_video::{Classification, Dataset, Ladder, Video};

fn bench_complexity(c: &mut Criterion) {
    let mut group = c.benchmark_group("complexity_process");
    group.throughput(Throughput::Elements(300));
    group.bench_function("generate_300_chunks", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(SceneComplexity::generate(300, 2.0, Genre::SciFi, seed))
        })
    });
    group.finish();
}

fn bench_encoder(c: &mut Criterion) {
    let sc = SceneComplexity::generate(300, 2.0, Genre::SciFi, 7);
    let ladder = Ladder::ffmpeg_h264();
    let cfg = EncoderConfig::capped_2x(EncoderSource::FFmpeg, 7);
    let mut group = c.benchmark_group("encoder");
    group.throughput(Throughput::Elements(300));
    group.bench_function("encode_track_300_chunks", |b| {
        b.iter(|| black_box(encode_track(&sc, &ladder, 3, &cfg)))
    });
    group.finish();
}

fn bench_video_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("video_synthesis");
    group.sample_size(20);
    group.bench_function("full_video_6_tracks_with_quality", |b| {
        let ladder = Ladder::ffmpeg_h264();
        let cfg = EncoderConfig::capped_2x(EncoderSource::FFmpeg, 7);
        b.iter(|| {
            black_box(Video::synthesize(
                "bench",
                Genre::SciFi,
                300,
                2.0,
                &ladder,
                &cfg,
                7,
            ))
        })
    });
    group.bench_function("conext18_dataset_16_videos", |b| {
        b.iter(|| black_box(Dataset::conext18()))
    });
    group.finish();
}

fn bench_classification(c: &mut Criterion) {
    let video = Dataset::ed_ffmpeg_h264();
    let mut group = c.benchmark_group("classification");
    group.throughput(Throughput::Elements(video.n_chunks() as u64));
    group.bench_function("quartiles_from_video", |b| {
        b.iter(|| black_box(Classification::from_video(&video)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_complexity,
    bench_encoder,
    bench_video_synthesis,
    bench_classification
);
criterion_main!(benches);
