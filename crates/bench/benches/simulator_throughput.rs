// This target sits outside cfg(test), so opt out of the library-only
// workspace lints here explicitly.
#![allow(clippy::unwrap_used, clippy::float_cmp)]

//! Simulator throughput: how many full streaming sessions per second the
//! substrate sustains. The 200-trace × multi-scheme × 16-video evaluation
//! grid only stays interactive because a session is microseconds of work;
//! this bench guards that property.

use abr_sim::abr::FixedLevel;
use abr_sim::Simulator;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use net_trace::fcc::{fcc_trace, FccConfig};
use net_trace::lte::{lte_trace, LteConfig};
use std::hint::black_box;
use vbr_video::{Dataset, Manifest};

fn bench_session_throughput(c: &mut Criterion) {
    let sim = Simulator::paper_default();
    let mut group = c.benchmark_group("simulator_throughput");
    let cases = [
        ("ffmpeg_2s_chunks_lte", Dataset::ed_ffmpeg_h264(), true),
        ("youtube_5s_chunks_lte", Dataset::ed_youtube_h264(), true),
        ("ffmpeg_2s_chunks_fcc", Dataset::ed_ffmpeg_h264(), false),
    ];
    for (name, video, lte) in cases {
        let manifest = Manifest::from_video(&video);
        let trace = if lte {
            lte_trace(3, &LteConfig::default())
        } else {
            fcc_trace(3, &FccConfig::default())
        };
        group.throughput(Throughput::Elements(manifest.n_chunks() as u64));
        group.bench_function(name, |b| {
            let mut algo = FixedLevel::new(3);
            b.iter(|| black_box(sim.run(&mut algo, &manifest, &trace)))
        });
    }
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.bench_function("lte_20min", |b| {
        let cfg = LteConfig::default();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(lte_trace(seed, &cfg))
        })
    });
    group.bench_function("fcc_20min", |b| {
        let cfg = FccConfig::default();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(fcc_trace(seed, &cfg))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_session_throughput, bench_trace_generation);
criterion_main!(benches);
