// This target sits outside cfg(test), so opt out of the library-only
// workspace lints here explicitly.
#![allow(clippy::unwrap_used, clippy::float_cmp)]

//! Per-decision and per-session runtime of every ABR scheme.
//!
//! §5.5 reports CAVA's dash.js prototype costing ≈ 56 ms for a whole
//! 10-minute video — "very light-weight". This bench establishes the same
//! property for the Rust implementation: a full CAVA session (300 decisions)
//! should cost well under a millisecond of ABR logic, and a single decision
//! is `O(N·|L|)` arithmetic.

use abr_baselines::{Bba1, Bola, BolaBitrateView, Mpc, PandaCq, Rba};
use abr_sim::{AbrAlgorithm, DecisionContext, Simulator};
use cava_core::Cava;
use criterion::{criterion_group, criterion_main, Criterion};
use net_trace::lte::{lte_trace, LteConfig};
use std::hint::black_box;
use vbr_video::quality::VmafModel;
use vbr_video::{Dataset, Manifest};

fn schemes(video: &vbr_video::Video) -> Vec<Box<dyn AbrAlgorithm>> {
    vec![
        Box::new(Cava::paper_default()),
        Box::new(Rba::paper_default()),
        Box::new(Bba1::paper_default()),
        Box::new(Mpc::robust()),
        Box::new(PandaCq::max_min(video, VmafModel::Phone)),
        Box::new(Bola::bola_e(BolaBitrateView::Segment)),
    ]
}

fn bench_single_decision(c: &mut Criterion) {
    let video = Dataset::ed_ffmpeg_h264();
    let manifest = Manifest::from_video(&video);
    let past = [2.0e6, 1.5e6, 2.5e6, 1.8e6, 2.2e6];
    let mut group = c.benchmark_group("single_decision");
    for mut algo in schemes(&video) {
        let ctx = DecisionContext {
            manifest: &manifest,
            chunk_index: 150,
            buffer_s: 35.0,
            estimated_bandwidth_bps: Some(2.0e6),
            last_level: Some(3),
            past_throughputs_bps: &past,
            wall_time_s: 300.0,
            startup_complete: true,
            visible_chunks: manifest.n_chunks(),
        };
        group.bench_function(algo.name().to_string(), |b| {
            b.iter(|| black_box(algo.choose_level(black_box(&ctx))))
        });
    }
    group.finish();
}

fn bench_full_session(c: &mut Criterion) {
    let video = Dataset::ed_ffmpeg_h264();
    let manifest = Manifest::from_video(&video);
    let trace = lte_trace(7, &LteConfig::default());
    let sim = Simulator::paper_default();
    let mut group = c.benchmark_group("full_session_10min_video");
    group.sample_size(20);
    for mut algo in schemes(&video) {
        group.bench_function(algo.name().to_string(), |b| {
            b.iter(|| black_box(sim.run(algo.as_mut(), &manifest, &trace)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_decision, bench_full_session);
criterion_main!(benches);
