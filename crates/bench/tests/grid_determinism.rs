//! Grid-scheduling determinism regression.
//!
//! `run_grid_on(1, ...)` is a plain serial loop; higher worker counts farm
//! the same scheme × trace tasks out to a thread pool. The two must produce
//! **byte-identical** journal summaries — every metric bit-equal, every map
//! iteration in the same order — or run journals and CSVs would depend on
//! scheduling. This is the check backing abr-lint's R2 (ordered maps on all
//! output paths); run it with `--features strict-invariants` to also arm the
//! simulator's runtime invariant layer on every session.
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use abr_bench::engine::{self, run_grid_on};
use abr_bench::harness::{SchemeKind, TraceSet};
use abr_sim::metrics::QoeMetrics;
use abr_sim::{PlayerConfig, QoeConfig};
use std::collections::BTreeMap;

/// Full-precision text rendering of a grid result, mirroring what the run
/// journal records per scheme (name, session count, per-session metrics).
/// `{:?}` on `f64` round-trips the exact bit pattern, so string equality
/// here means bit-for-bit equal numbers in iteration order.
fn render(grid: &BTreeMap<SchemeKind, Vec<QoeMetrics>>) -> String {
    let mut out = String::new();
    for (scheme, sessions) in grid {
        out.push_str(&format!("{scheme:?} sessions={}\n", sessions.len()));
        for (i, m) in sessions.iter().enumerate() {
            out.push_str(&format!("  [{i}] {m:?}\n"));
        }
    }
    out
}

#[test]
fn one_thread_and_eight_threads_render_identical_summaries() {
    let video = engine::video("ED-ffmpeg-h264");
    let traces = engine::traces_n(TraceSet::Lte, 8);
    let qoe = QoeConfig::lte();
    let player = PlayerConfig::default();
    let schemes = [
        SchemeKind::Cava,
        SchemeKind::Mpc,
        SchemeKind::Rba,
        SchemeKind::Bba1,
    ];

    let serial = run_grid_on(1, &schemes, &video, &traces, &qoe, &player);
    let parallel = run_grid_on(8, &schemes, &video, &traces, &qoe, &player);

    assert_eq!(serial, parallel, "grid results differ across thread counts");
    let a = render(&serial);
    let b = render(&parallel);
    assert_eq!(a, b, "rendered journal summaries are not byte-identical");
    assert_eq!(
        a.matches("sessions=8").count(),
        schemes.len(),
        "every scheme reports all sessions"
    );
}
