//! Population-sweep determinism regression (mirrors `grid_determinism.rs`).
//!
//! `population::sweep(config, video, 1)` is a plain serial loop; higher
//! worker counts pull viewer indices off the engine's atomic queue. Because
//! every viewer session is pure in its index — arrival, cohort, trace seed,
//! and lifecycle all derive from `(seed, index)` — and aggregation walks
//! sessions in index order, the per-cohort summaries and their canonical
//! CSV rendering must be **byte-identical** for any worker count and across
//! repeat runs of the same seed. This is the witness `scripts/check.sh`'s
//! population smoke relies on, and what makes the 1,000,000-session
//! acceptance sweep reproducible.
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use abr_bench::engine;
use abr_bench::population::{self, csv_bytes, CSV_HEADER};
use abr_pop::{LifecycleConfig, PopConfig};

fn pop(sessions: usize) -> PopConfig {
    PopConfig {
        seed: 42,
        sessions,
        lifecycle: LifecycleConfig {
            // Bias behaviour high so the determinism check exercises the
            // seek/abandon paths, not just straight-through playback.
            complete_fraction: 0.3,
            seek_prob: 0.6,
            ..LifecycleConfig::default()
        },
        ..PopConfig::default()
    }
}

#[test]
fn one_thread_and_eight_threads_render_identical_cohorts() {
    let video = engine::video("ED-youtube-h264");
    let serial = population::sweep(pop(240), &video, 1);
    let parallel = population::sweep(pop(240), &video, 8);

    assert_eq!(serial, parallel, "cohort summaries differ across threads");
    let a = csv_bytes(&serial);
    let b = csv_bytes(&parallel);
    assert_eq!(a, b, "canonical CSV is not byte-identical across threads");

    // The sweep really expressed population behaviour.
    let total: usize = serial.iter().map(|s| s.sessions).sum();
    assert_eq!(total, 240);
    assert!(serial.iter().map(|s| s.abandoned).sum::<usize>() > 0);
    assert!(serial.iter().map(|s| s.seeks).sum::<usize>() > 0);
    assert!(serial.len() > 4, "population should spread across cohorts");
    assert!(a.starts_with(&CSV_HEADER.join(",")));
}

#[test]
fn repeat_runs_of_the_same_seed_are_byte_identical() {
    let video = engine::video("ED-youtube-h264");
    let first = csv_bytes(&population::sweep(pop(120), &video, 4));
    let second = csv_bytes(&population::sweep(pop(120), &video, 4));
    assert_eq!(first, second, "same seed, same bytes");
}

#[test]
fn different_seeds_change_the_population() {
    let video = engine::video("ED-youtube-h264");
    let a = population::sweep(pop(120), &video, 4);
    let b = population::sweep(
        PopConfig {
            seed: 43,
            ..pop(120)
        },
        &video,
        4,
    );
    assert_ne!(csv_bytes(&a), csv_bytes(&b), "seed must matter");
}
