// Integration tests sit outside cfg(test), so opt out of the library-only
// workspace lints here explicitly.
#![allow(clippy::unwrap_used, clippy::float_cmp)]

//! Smoke test of the experiment plumbing: run the cheap experiments from
//! the registry end-to-end with a tiny trace budget, and verify their CSV
//! artifacts exist and are well-formed (header + consistent column counts).

use std::path::Path;

fn assert_wellformed_csv(path: &Path) {
    let content =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    let mut lines = content.lines();
    let header = lines
        .next()
        .unwrap_or_else(|| panic!("{}: empty", path.display()));
    let ncols = header.split(',').count();
    assert!(ncols >= 2, "{}: header {header:?}", path.display());
    let mut rows = 0;
    for line in lines {
        // Quoted fields never contain commas in our outputs’ numeric files,
        // so a plain split suffices for the column-count check.
        assert_eq!(
            line.split(',').count(),
            ncols,
            "{}: ragged row {line:?}",
            path.display()
        );
        rows += 1;
    }
    assert!(rows > 0, "{}: no data rows", path.display());
}

#[test]
fn cheap_experiments_produce_wellformed_csvs() {
    let dir = std::env::temp_dir().join("abr_bench_smoke_results");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    // Env is process-global: this is the only test in this file (and the
    // experiments read the vars at call time).
    std::env::set_var("TRACES", "2");
    std::env::set_var("RESULTS_DIR", &dir);

    let cheap = [
        "fig01",
        "fig02",
        "fig03",
        "fig06",
        "switch_penalty",
        "class_granularity",
        "vbr_vs_cbr",
        "pia_vs_cava",
    ];
    let registry = abr_bench::experiments::registry();
    for id in cheap {
        let (_, _, run) = registry
            .iter()
            .find(|(rid, _, _)| *rid == id)
            .unwrap_or_else(|| panic!("experiment {id} not in registry"));
        run().unwrap_or_else(|e| panic!("{id}: {e}"));
    }

    // Every produced CSV must be structurally sound.
    let mut n_csv = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|x| x == "csv") {
            assert_wellformed_csv(&path);
            n_csv += 1;
        }
    }
    assert!(n_csv >= 10, "expected a stack of CSVs, got {n_csv}");
    std::fs::remove_dir_all(&dir).ok();
}
