// Integration tests sit outside cfg(test), so opt out of the library-only
// workspace lints here explicitly.
#![allow(clippy::unwrap_used, clippy::float_cmp)]

//! End-to-end engine smoke test: drive two real registry experiments with
//! a tiny trace budget and assert both land in the run journal with their
//! wall times and seeds.
//!
//! Kept as its own integration-test binary because it sets process-wide
//! environment (`TRACES`, `RESULTS_DIR`) before anything reads it.

use abr_bench::journal::RunJournal;

#[test]
fn two_experiments_run_and_journal() {
    let results = std::env::temp_dir().join(format!("abr-bench-smoke-{}", std::process::id()));
    // This test binary runs these two experiments and nothing else, so the
    // env is set before any trace_count()/results_dir() read.
    std::env::set_var("TRACES", "4");
    std::env::set_var("RESULTS_DIR", &results);

    // fig01 is trace-free (pure dataset characterization); fig02 exercises
    // the video cache across four videos. Both are cheap at TRACES=4.
    abr_bench::engine::run_ids(&["fig01", "fig02"]).expect("experiments run");

    let journal_dir = results.join("journal");
    let mut entries: Vec<_> = std::fs::read_dir(&journal_dir)
        .expect("journal dir exists")
        .map(|e| e.expect("dir entry").path())
        .collect();
    entries.sort();
    assert_eq!(entries.len(), 1, "exactly one journal for one run");
    let json = std::fs::read_to_string(&entries[0]).expect("journal readable");
    let journal: RunJournal = serde_json::from_str(&json).expect("journal parses");

    assert_eq!(journal.trace_count, 4);
    assert!(!journal.git_rev.is_empty());
    assert!(journal.wall_time_s > 0.0);
    let ids: Vec<&str> = journal.experiments.iter().map(|e| e.id.as_str()).collect();
    assert_eq!(
        ids,
        ["fig01", "fig02"],
        "both experiments journaled in order"
    );
    for exp in &journal.experiments {
        assert!(exp.wall_time_s > 0.0, "{} wall time recorded", exp.id);
        assert_eq!(exp.trace_count, 4);
    }

    // The same artifacts were fetched at most once per key.
    let before = abr_bench::engine::video_generations();
    abr_bench::engine::run_ids(&["fig01"]).expect("re-run");
    assert_eq!(
        abr_bench::engine::video_generations(),
        before,
        "re-running an experiment must not rebuild cached videos"
    );

    std::fs::remove_dir_all(&results).ok();
}
