//! Device/network cohorts and the population mix.
//!
//! A cohort is the cross of a *device class* (phone vs TV — which picks
//! the VMAF viewing model and therefore the QoE config), an *access
//! network regime* (the four seeded generators in `net-trace`), and a
//! *live* flag (live-edge viewers stream with a bounded DVR window). The
//! [`MixConfig`] gives the marginal weights; sampling draws the three
//! axes independently, which matches how the axes are reported in
//! deployment studies (device share, network share, live share).

use abr_sim::{LiveConfig, PlayerConfig, QoeConfig};
use net_trace::fcc::{fcc_trace, FccConfig};
use net_trace::fiveg::{fiveg_trace, FiveGConfig};
use net_trace::lte::{lte_trace, LteConfig};
use net_trace::satellite::{satellite_trace, SatelliteConfig, GEO_RTT_S};
use net_trace::Trace;
use rand::rngs::StdRng;
use rand::Rng;

/// Viewing device class; selects the VMAF model used for QoE scoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Device {
    /// Small screen — scored with the phone VMAF model.
    Phone,
    /// Living-room screen — scored with the TV VMAF model.
    Tv,
}

/// Access-network regime; selects the seeded trace generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NetworkRegime {
    /// Cellular drive traces (the paper's LTE set).
    Lte,
    /// Fixed-broadband traces (the paper's FCC set).
    Fcc,
    /// High-variance 5G: mmWave peaks and blockage collapses.
    FiveG,
    /// GEO satellite: smooth rates, long rain fades, ~550 ms RTT.
    Satellite,
}

impl NetworkRegime {
    /// Stable lowercase name, used in cohort labels and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            NetworkRegime::Lte => "lte",
            NetworkRegime::Fcc => "fcc",
            NetworkRegime::FiveG => "5g",
            NetworkRegime::Satellite => "satellite",
        }
    }

    /// Generate the seeded trace for one session on this regime, using
    /// each generator's default parameters.
    pub fn trace(&self, seed: u64) -> Trace {
        match self {
            NetworkRegime::Lte => lte_trace(seed, &LteConfig::default()),
            NetworkRegime::Fcc => fcc_trace(seed, &FccConfig::default()),
            NetworkRegime::FiveG => fiveg_trace(seed, &FiveGConfig::default()),
            NetworkRegime::Satellite => satellite_trace(seed, &SatelliteConfig::default()),
        }
    }
}

/// One population cohort: device × network × live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cohort {
    /// Viewing device class.
    pub device: Device,
    /// Access-network regime.
    pub network: NetworkRegime,
    /// True for live-edge viewers (bounded DVR window, no seeking).
    pub live: bool,
}

impl Cohort {
    /// Stable label, e.g. `phone-5g` or `tv-fcc-live`: the grouping key
    /// for per-cohort reporting.
    pub fn label(&self) -> String {
        let device = match self.device {
            Device::Phone => "phone",
            Device::Tv => "tv",
        };
        if self.live {
            format!("{device}-{}-live", self.network.name())
        } else {
            format!("{device}-{}", self.network.name())
        }
    }

    /// The player configuration this cohort streams with: satellite
    /// viewers pay the GEO request RTT, live viewers get a 3-chunk
    /// head-start window, everyone else uses the paper defaults.
    pub fn player_config(&self) -> PlayerConfig {
        PlayerConfig {
            request_rtt_s: match self.network {
                NetworkRegime::Satellite => GEO_RTT_S,
                _ => 0.0,
            },
            live: if self.live {
                Some(LiveConfig {
                    head_start_chunks: 3,
                })
            } else {
                None
            },
            ..PlayerConfig::default()
        }
    }

    /// The QoE configuration for this cohort's device class.
    pub fn qoe_config(&self) -> QoeConfig {
        match self.device {
            Device::Phone => QoeConfig::lte(),
            Device::Tv => QoeConfig::fcc(),
        }
    }

    /// Every cohort, in stable report order (device-major, then network,
    /// VoD before live).
    pub fn all() -> Vec<Cohort> {
        let mut out = Vec::with_capacity(16);
        for device in [Device::Phone, Device::Tv] {
            for network in [
                NetworkRegime::Lte,
                NetworkRegime::Fcc,
                NetworkRegime::FiveG,
                NetworkRegime::Satellite,
            ] {
                for live in [false, true] {
                    out.push(Cohort {
                        device,
                        network,
                        live,
                    });
                }
            }
        }
        out
    }
}

/// Marginal weights of the population mix. Weights need not sum to 1;
/// they are normalized when sampling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixConfig {
    /// Weight of phone viewers (vs TV).
    pub phone: f64,
    /// Weight of TV viewers.
    pub tv: f64,
    /// Network-regime weights, in [`NetworkRegime`] declaration order:
    /// LTE, FCC, 5G, satellite.
    pub network: [f64; 4],
    /// Fraction of viewers watching the live edge, in `[0, 1]`.
    pub live_fraction: f64,
}

impl Default for MixConfig {
    fn default() -> MixConfig {
        MixConfig {
            phone: 0.55,
            tv: 0.45,
            network: [0.4, 0.35, 0.15, 0.1],
            live_fraction: 0.1,
        }
    }
}

impl MixConfig {
    /// Validate invariants.
    ///
    /// # Panics
    /// Panics on negative weights, an all-zero axis, or a live fraction
    /// outside `[0, 1]`.
    pub fn validate(&self) {
        assert!(
            self.phone >= 0.0 && self.tv >= 0.0 && self.phone + self.tv > 0.0,
            "device weights must be non-negative and not all zero"
        );
        assert!(
            self.network.iter().all(|&w| w >= 0.0) && self.network.iter().sum::<f64>() > 0.0,
            "network weights must be non-negative and not all zero"
        );
        assert!(
            (0.0..=1.0).contains(&self.live_fraction),
            "live fraction must be in [0, 1]"
        );
    }

    /// Draw one cohort. Consumes exactly three uniform draws from `rng`,
    /// in the documented order: device, network, live.
    pub fn sample(&self, rng: &mut StdRng) -> Cohort {
        let device = if rng.gen::<f64>() * (self.phone + self.tv) < self.phone {
            Device::Phone
        } else {
            Device::Tv
        };
        let total: f64 = self.network.iter().sum();
        let mut x = rng.gen::<f64>() * total;
        let mut picked = 3usize;
        for (i, &w) in self.network.iter().enumerate() {
            if x < w {
                picked = i;
                break;
            }
            x -= w;
        }
        let network = [
            NetworkRegime::Lte,
            NetworkRegime::Fcc,
            NetworkRegime::FiveG,
            NetworkRegime::Satellite,
        ][picked];
        let live = rng.gen::<f64>() < self.live_fraction;
        Cohort {
            device,
            network,
            live,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn labels_are_stable_and_unique() {
        let labels: Vec<String> = Cohort::all().iter().map(Cohort::label).collect();
        assert_eq!(labels.len(), 16);
        let mut sorted = labels.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 16, "labels must be unique");
        assert!(labels.contains(&"phone-5g".to_string()));
        assert!(labels.contains(&"tv-satellite-live".to_string()));
    }

    #[test]
    fn satellite_cohorts_pay_the_geo_rtt() {
        let sat = Cohort {
            device: Device::Tv,
            network: NetworkRegime::Satellite,
            live: false,
        };
        assert!(sat.player_config().request_rtt_s > 0.5);
        let lte = Cohort {
            device: Device::Tv,
            network: NetworkRegime::Lte,
            live: false,
        };
        assert_eq!(lte.player_config().request_rtt_s, 0.0);
    }

    #[test]
    fn live_cohorts_get_a_dvr_window() {
        let c = Cohort {
            device: Device::Phone,
            network: NetworkRegime::Fcc,
            live: true,
        };
        assert!(c.player_config().live.is_some());
        c.player_config().validate();
    }

    #[test]
    fn sampling_respects_the_mix() {
        let mix = MixConfig {
            phone: 1.0,
            tv: 0.0,
            network: [0.0, 0.0, 1.0, 0.0],
            live_fraction: 0.0,
        };
        mix.validate();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let c = mix.sample(&mut rng);
            assert_eq!(c.device, Device::Phone);
            assert_eq!(c.network, NetworkRegime::FiveG);
            assert!(!c.live);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let mix = MixConfig::default();
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(mix.sample(&mut a), mix.sample(&mut b));
        }
    }

    #[test]
    fn regimes_generate_distinct_traces() {
        let seeds = 7u64;
        let traces: Vec<Trace> = [
            NetworkRegime::Lte,
            NetworkRegime::Fcc,
            NetworkRegime::FiveG,
            NetworkRegime::Satellite,
        ]
        .iter()
        .map(|r| r.trace(seeds))
        .collect();
        for i in 0..traces.len() {
            for j in i + 1..traces.len() {
                assert_ne!(traces[i].samples(), traces[j].samples());
            }
        }
    }

    #[test]
    #[should_panic]
    fn all_zero_network_mix_rejected() {
        MixConfig {
            network: [0.0; 4],
            ..MixConfig::default()
        }
        .validate();
    }
}
