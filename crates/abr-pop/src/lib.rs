#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
//! # abr-pop — population-scale workload engine
//!
//! The paper evaluates ABR schemes one session at a time over fixed trace
//! sets. Real deployments serve a *population*: viewers arrive on a diurnal
//! curve, watch on phones and TVs over wildly different access networks,
//! seek around, and abandon mid-stream. This crate models that population
//! as a **seeded, deterministic** generative process over logical time —
//! the layer between trace generation (`net-trace`) and execution
//! (`bench`'s in-process sweep or `abr-serve`'s socket loadgen).
//!
//! * [`diurnal`] — a non-homogeneous arrival process: an explicit rate
//!   curve λ(t) with a closed-form integral, inverted to place arrivals.
//! * [`cohort`] — the device/network mix: phone vs TV, LTE / FCC
//!   broadband / 5G / GEO satellite, and a live-viewer fraction; maps each
//!   cohort to its player configuration, QoE model, and trace generator.
//! * [`lifecycle`] — per-viewer behaviour draws: session length /
//!   abandonment and seek events, emitted as an
//!   [`abr_sim::SessionControl`].
//! * [`population`] — ties the three together: [`population::Population`]
//!   derives viewer `i` of a seeded population as a *pure function of
//!   `(seed, i)`*, so million-session sweeps parallelize with no
//!   cross-thread state and stay byte-identical at any thread count.
//!
//! Everything is reachable from one seed. There is no wall-clock, no OS
//! entropy, and no hash-order dependence anywhere in this crate (abr-lint
//! rules R1–R5 are enforced on it).

pub mod cohort;
pub mod diurnal;
pub mod lifecycle;
pub mod population;

pub use cohort::{Cohort, Device, MixConfig, NetworkRegime};
pub use diurnal::DiurnalConfig;
pub use lifecycle::LifecycleConfig;
pub use population::{PopConfig, Population, ViewerSession};
