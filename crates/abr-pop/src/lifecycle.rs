//! Per-viewer behaviour draws: session length, abandonment, and seeks.
//!
//! Deployment studies consistently report (a) a large fraction of
//! sessions abandoned well before the content ends, with roughly
//! exponential watch times, and (b) a minority of sessions containing one
//! or more seeks. The draws here reproduce those shapes and emit an
//! [`abr_sim::SessionControl`] the simulator executes directly.
//!
//! Draw order from the per-viewer RNG is fixed and documented (part of
//! the determinism contract): completion coin, watch-time draw, seek
//! coin, seek count, then `(time, target)` per seek.

use abr_sim::{SeekEvent, SessionControl};
use rand::rngs::StdRng;
use rand::Rng;

/// Parameters of the viewer-behaviour draws.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifecycleConfig {
    /// Probability a viewer watches to the end (no abandonment draw).
    pub complete_fraction: f64,
    /// Mean of the exponential watch-time draw for abandoning viewers,
    /// seconds.
    pub mean_watch_s: f64,
    /// Floor on the abandonment time, seconds (nobody leaves mid-startup
    /// in under this).
    pub min_watch_s: f64,
    /// Probability a (VoD) session contains any seeks.
    pub seek_prob: f64,
    /// Maximum seeks per session (uniform 1..=max when the seek coin
    /// lands).
    pub max_seeks: usize,
    /// Nominal video length in chunks used to place seek targets; the
    /// player clamps targets to the actual video, so a hint longer than
    /// the content just biases seeks toward the end.
    pub video_chunks_hint: usize,
    /// Latest seek time as a fraction of the mean watch time.
    pub seek_window_s: f64,
}

impl Default for LifecycleConfig {
    fn default() -> LifecycleConfig {
        LifecycleConfig {
            complete_fraction: 0.45,
            mean_watch_s: 300.0,
            min_watch_s: 5.0,
            seek_prob: 0.25,
            max_seeks: 3,
            video_chunks_hint: 120,
            seek_window_s: 420.0,
        }
    }
}

impl LifecycleConfig {
    /// Validate invariants.
    ///
    /// # Panics
    /// Panics on out-of-range probabilities or non-positive times/counts.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.complete_fraction),
            "complete fraction must be in [0, 1]"
        );
        assert!(self.mean_watch_s > 0.0, "mean watch time must be positive");
        assert!(self.min_watch_s > 0.0, "min watch time must be positive");
        assert!(
            (0.0..=1.0).contains(&self.seek_prob),
            "seek probability must be in [0, 1]"
        );
        assert!(self.max_seeks >= 1, "max seeks must be at least 1");
        assert!(self.video_chunks_hint >= 1, "chunk hint must be positive");
        assert!(self.seek_window_s > 0.0, "seek window must be positive");
    }

    /// Draw one viewer's session control. Live viewers never seek (they
    /// are pinned to the live edge) but abandon like everyone else.
    pub fn draw(&self, rng: &mut StdRng, live: bool) -> SessionControl {
        // 1. Completion coin + watch time. The watch-time uniform is
        //    always consumed so the downstream draw positions don't
        //    depend on the coin (keeps per-field tweaks local).
        let completes = rng.gen::<f64>() < self.complete_fraction;
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let watch_s = (-self.mean_watch_s * (1.0 - u).ln()).max(self.min_watch_s);
        let abandon_at_s = if completes { None } else { Some(watch_s) };

        // 2. Seeks.
        let mut seeks = Vec::new();
        let seek_coin = rng.gen::<f64>();
        if !live && seek_coin < self.seek_prob {
            let count = rng.gen_range(1..=self.max_seeks);
            for _ in 0..count {
                let at_s = self.min_watch_s + rng.gen::<f64>() * self.seek_window_s;
                let to_chunk = rng.gen_range(0..self.video_chunks_hint);
                // Seeks after the viewer has left never fire; skip them so
                // the control reflects what can actually happen.
                if abandon_at_s.is_none_or(|a| at_s < a) {
                    seeks.push(SeekEvent { at_s, to_chunk });
                }
            }
        }
        SessionControl {
            abandon_at_s,
            seeks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn draws_are_deterministic() {
        let cfg = LifecycleConfig::default();
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(cfg.draw(&mut a, false), cfg.draw(&mut b, false));
        }
    }

    #[test]
    fn completion_fraction_is_respected() {
        let cfg = LifecycleConfig::default();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 4000;
        let completed = (0..n)
            .filter(|_| cfg.draw(&mut rng, false).abandon_at_s.is_none())
            .count();
        let frac = completed as f64 / n as f64;
        assert!(
            (frac - cfg.complete_fraction).abs() < 0.03,
            "completed fraction {frac}"
        );
    }

    #[test]
    fn abandonment_times_are_exponential_ish() {
        let cfg = LifecycleConfig::default();
        let mut rng = StdRng::seed_from_u64(7);
        let times: Vec<f64> = (0..8000)
            .filter_map(|_| cfg.draw(&mut rng, false).abandon_at_s)
            .collect();
        assert!(times.len() > 3000);
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        assert!(
            (mean - cfg.mean_watch_s).abs() / cfg.mean_watch_s < 0.1,
            "mean watch {mean}"
        );
        assert!(times.iter().all(|&t| t >= cfg.min_watch_s));
    }

    #[test]
    fn live_viewers_never_seek() {
        let cfg = LifecycleConfig {
            seek_prob: 1.0,
            ..LifecycleConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            assert!(cfg.draw(&mut rng, true).seeks.is_empty());
        }
    }

    #[test]
    fn seeks_precede_abandonment() {
        let cfg = LifecycleConfig {
            seek_prob: 1.0,
            complete_fraction: 0.0,
            ..LifecycleConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..500 {
            let control = cfg.draw(&mut rng, false);
            let abandon = control.abandon_at_s.expect("all sessions abandon");
            for s in &control.seeks {
                assert!(s.at_s < abandon);
            }
        }
    }

    #[test]
    fn seek_fraction_is_respected() {
        let cfg = LifecycleConfig {
            complete_fraction: 1.0,
            ..LifecycleConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(17);
        let n = 4000;
        let with_seeks = (0..n)
            .filter(|_| !cfg.draw(&mut rng, false).seeks.is_empty())
            .count();
        let frac = with_seeks as f64 / n as f64;
        assert!((frac - cfg.seek_prob).abs() < 0.03, "seek fraction {frac}");
    }
}
