//! The seeded population: viewer `i` as a pure function of `(seed, i)`.
//!
//! A population of `N` sessions over a horizon `[0, T]` is fully
//! determined by one seed. Each viewer's cohort, arrival time, trace
//! seed, and behaviour are derived from a per-viewer RNG keyed by
//! `splitmix64(seed, i)` — **no sequential state crosses viewers**, so a
//! million-session sweep can be sharded across any number of threads and
//! still produce bit-identical results in index order. Arrivals follow
//! the diurnal curve via the conditional-NHPP construction (see
//! [`crate::diurnal`]): given the population size, arrival times are
//! i.i.d. with density `λ(t)/Λ(T)`, so they too are per-viewer pure.

use crate::cohort::{Cohort, MixConfig};
use crate::diurnal::DiurnalConfig;
use crate::lifecycle::LifecycleConfig;
use abr_sim::SessionControl;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a seeded population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopConfig {
    /// Master seed: everything below derives from it.
    pub seed: u64,
    /// Number of viewer sessions.
    pub sessions: usize,
    /// Arrival horizon in seconds (sessions arrive in `[0, duration_s]`).
    pub duration_s: f64,
    /// Device/network/live mix.
    pub mix: MixConfig,
    /// Per-viewer behaviour draws.
    pub lifecycle: LifecycleConfig,
    /// Diurnal arrival curve.
    pub diurnal: DiurnalConfig,
}

impl Default for PopConfig {
    fn default() -> PopConfig {
        PopConfig {
            seed: 42,
            sessions: 10_000,
            duration_s: 86_400.0,
            mix: MixConfig::default(),
            lifecycle: LifecycleConfig::default(),
            diurnal: DiurnalConfig::default(),
        }
    }
}

impl PopConfig {
    /// Validate invariants.
    ///
    /// # Panics
    /// Panics on an empty population, a non-positive horizon, or invalid
    /// sub-configurations.
    pub fn validate(&self) {
        assert!(self.sessions > 0, "population must not be empty");
        assert!(self.duration_s > 0.0, "horizon must be positive");
        self.mix.validate();
        self.lifecycle.validate();
        self.diurnal.validate();
    }
}

/// One derived viewer session: everything an execution path needs to run
/// it — in-process (`bench`) or over sockets (`abr-serve`'s loadgen).
#[derive(Debug, Clone, PartialEq)]
pub struct ViewerSession {
    /// Population index (0-based); with the seed, the full identity.
    pub index: usize,
    /// Arrival time in seconds from the population start.
    pub arrival_s: f64,
    /// Device/network/live cohort.
    pub cohort: Cohort,
    /// Seed for this viewer's network trace (feed to
    /// [`crate::cohort::NetworkRegime::trace`]).
    pub trace_seed: u64,
    /// Behaviour overlay, with times relative to the *session* start.
    pub control: SessionControl,
}

/// A seeded population of viewer sessions.
#[derive(Debug, Clone)]
pub struct Population {
    config: PopConfig,
}

/// SplitMix64: the standard 64-bit finalizer used to key per-viewer RNGs.
/// Pure arithmetic, so viewer derivation never touches shared state.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Population {
    /// Create a population.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see [`PopConfig::validate`]).
    pub fn new(config: PopConfig) -> Population {
        config.validate();
        Population { config }
    }

    /// Configuration in use.
    pub fn config(&self) -> &PopConfig {
        &self.config
    }

    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.config.sessions
    }

    /// Always false (construction rejects empty populations); provided
    /// for the `len`/`is_empty` convention.
    pub fn is_empty(&self) -> bool {
        self.config.sessions == 0
    }

    /// Derive viewer `index`. Pure in `(config, index)`: calling this in
    /// any order, from any thread, yields the same session.
    ///
    /// # Panics
    /// Panics when `index` is out of range.
    pub fn session(&self, index: usize) -> ViewerSession {
        assert!(index < self.config.sessions, "viewer index out of range");
        // Two independent streams per viewer: one RNG for behaviour
        // draws, one arithmetic derivation for the trace seed (kept out
        // of the RNG so trace identity survives lifecycle re-tuning).
        let key = splitmix64(self.config.seed ^ splitmix64(index as u64));
        let mut rng = StdRng::seed_from_u64(key);
        // Documented draw order: cohort (3 draws), arrival (1 draw),
        // lifecycle (see `LifecycleConfig::draw`).
        let cohort = self.config.mix.sample(&mut rng);
        let u_arrival = rng.gen::<f64>();
        let arrival_s = self
            .config
            .diurnal
            .arrival_from_uniform(u_arrival, self.config.duration_s);
        let control = self.config.lifecycle.draw(&mut rng, cohort.live);
        let trace_seed = splitmix64(key ^ 0x5eed_7ace_5eed_7ace);
        ViewerSession {
            index,
            arrival_s,
            cohort,
            trace_seed,
            control,
        }
    }

    /// All sessions in arrival order (ties broken by index): the order a
    /// serving front end would see them. Materializes the whole
    /// population — use [`Population::session`] directly for sharded
    /// million-session sweeps.
    pub fn schedule(&self) -> Vec<ViewerSession> {
        let mut all: Vec<ViewerSession> =
            (0..self.config.sessions).map(|i| self.session(i)).collect();
        all.sort_by(|a, b| {
            a.arrival_s
                .total_cmp(&b.arrival_s)
                .then(a.index.cmp(&b.index))
        });
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cohort::NetworkRegime;

    fn small_pop(seed: u64, sessions: usize) -> Population {
        Population::new(PopConfig {
            seed,
            sessions,
            ..PopConfig::default()
        })
    }

    #[test]
    fn per_index_derivation_is_pure() {
        let pop = small_pop(1, 1000);
        // Derive in reverse, then forward: identical.
        let reversed: Vec<ViewerSession> = (0..1000).rev().map(|i| pop.session(i)).collect();
        for (i, s) in reversed.iter().rev().enumerate() {
            assert_eq!(*s, pop.session(i));
        }
    }

    #[test]
    fn same_seed_same_population_different_seed_different() {
        let a = small_pop(7, 200);
        let b = small_pop(7, 200);
        let c = small_pop(8, 200);
        for i in 0..200 {
            assert_eq!(a.session(i), b.session(i));
        }
        assert!(
            (0..200).any(|i| a.session(i) != c.session(i)),
            "different seeds must differ"
        );
    }

    #[test]
    fn trace_seeds_are_distinct_across_viewers() {
        let pop = small_pop(3, 2000);
        let mut seeds: Vec<u64> = (0..2000).map(|i| pop.session(i).trace_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 2000, "trace seed collision");
    }

    #[test]
    fn arrivals_follow_the_diurnal_curve() {
        // The satellite task's statistical sanity check: bin arrivals by
        // hour over one day and compare each bin against the expected
        // share of the cumulative rate.
        let pop = small_pop(42, 40_000);
        let d = pop.config().diurnal;
        let horizon = pop.config().duration_s;
        let mut bins = [0usize; 24];
        for i in 0..pop.len() {
            let t = pop.session(i).arrival_s;
            let hour = ((t / 3600.0) as usize).min(23);
            bins[hour] += 1;
        }
        let total_rate = d.cumulative(horizon);
        for (h, &count) in bins.iter().enumerate() {
            let lo = h as f64 * 3600.0;
            let hi = lo + 3600.0;
            let expected = (d.cumulative(hi) - d.cumulative(lo)) / total_rate * pop.len() as f64;
            let observed = count as f64;
            assert!(
                (observed - expected).abs() < 0.15 * expected + 30.0,
                "hour {h}: observed {observed}, expected {expected:.0}"
            );
        }
        // The peak-hour bin must clearly dominate the trough bin.
        let peak = bins[20] as f64;
        let trough = bins[8] as f64;
        assert!(
            peak > 2.5 * trough,
            "diurnal shape missing: peak {peak} trough {trough}"
        );
    }

    #[test]
    fn mix_fractions_hold_at_scale() {
        let pop = small_pop(5, 20_000);
        let mut phone = 0usize;
        let mut by_network = [0usize; 4];
        let mut live = 0usize;
        for i in 0..pop.len() {
            let s = pop.session(i);
            if s.cohort.device == crate::cohort::Device::Phone {
                phone += 1;
            }
            let ni = match s.cohort.network {
                NetworkRegime::Lte => 0,
                NetworkRegime::Fcc => 1,
                NetworkRegime::FiveG => 2,
                NetworkRegime::Satellite => 3,
            };
            by_network[ni] += 1;
            if s.cohort.live {
                live += 1;
            }
        }
        let n = pop.len() as f64;
        let mix = pop.config().mix;
        assert!((phone as f64 / n - mix.phone / (mix.phone + mix.tv)).abs() < 0.02);
        let net_total: f64 = mix.network.iter().sum();
        for (k, &count) in by_network.iter().enumerate() {
            assert!(
                (count as f64 / n - mix.network[k] / net_total).abs() < 0.02,
                "network {k}: {count}"
            );
        }
        assert!((live as f64 / n - mix.live_fraction).abs() < 0.02);
    }

    #[test]
    fn schedule_is_sorted_by_arrival() {
        let pop = small_pop(11, 500);
        let sched = pop.schedule();
        assert_eq!(sched.len(), 500);
        for w in sched.windows(2) {
            assert!(w[0].arrival_s <= w[1].arrival_s);
        }
        // Every index appears exactly once.
        let mut idx: Vec<usize> = sched.iter().map(|s| s.index).collect();
        idx.sort_unstable();
        assert_eq!(idx, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn sessions_execute_through_the_simulator() {
        use abr_sim::abr::FixedLevel;
        use abr_sim::Simulator;
        use vbr_video::{Dataset, Manifest};
        let pop = small_pop(2, 40);
        let manifest = Manifest::from_video(&Dataset::ed_youtube_h264());
        let mut abandoned = 0usize;
        let mut seeks = 0usize;
        for i in 0..pop.len() {
            let s = pop.session(i);
            let sim = Simulator::new(s.cohort.player_config());
            let trace = s.cohort.network.trace(s.trace_seed);
            let r = sim.run_controlled(&mut FixedLevel::new(1), &manifest, &trace, &s.control);
            assert!(r.validate().is_ok(), "viewer {i}: {:?}", r.validate());
            if r.abandoned {
                abandoned += 1;
            }
            seeks += r.n_seeks;
        }
        assert!(abandoned > 0, "some viewers abandon");
        assert!(seeks > 0, "some viewers seek");
    }

    #[test]
    #[should_panic]
    fn out_of_range_index_panics() {
        let pop = small_pop(1, 10);
        let _ = pop.session(10);
    }

    #[test]
    #[should_panic]
    fn empty_population_rejected() {
        let _ = Population::new(PopConfig {
            sessions: 0,
            ..PopConfig::default()
        });
    }
}
