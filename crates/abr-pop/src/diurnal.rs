//! Diurnal non-homogeneous arrival process.
//!
//! Video demand follows a pronounced daily cycle: a trough in the early
//! morning and a prime-time evening peak several times higher. We model
//! the arrival intensity as the raised-cosine curve
//!
//! ```text
//! λ(t) = 1 + a · (1 − cos(2π (t − φ) / P)) / 2
//! ```
//!
//! with period `P` (one day), amplitude `a` (peak-to-trough ≈ `1 + a`),
//! and phase `φ` chosen so the peak lands at `peak_hour`. The absolute
//! scale of λ is irrelevant here: populations are generated *conditioned
//! on their size* `N`, and a standard property of the non-homogeneous
//! Poisson process is that, given `N` arrivals in `[0, T]`, the arrival
//! times are i.i.d. with density `λ(t) / Λ(T)`. Each viewer's arrival is
//! therefore `Λ⁻¹(u · Λ(T))` for an independent uniform `u` — a pure
//! per-viewer computation, which is what makes the population sweep
//! embarrassingly parallel yet exactly reproducible.

use std::f64::consts::TAU;

/// Parameters of the diurnal rate curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalConfig {
    /// Period of the cycle in seconds (default: one day).
    pub period_s: f64,
    /// Amplitude `a` of the raised cosine: the peak rate is `1 + a` times
    /// the trough rate (default 3 — prime time is 4× the 4 a.m. trough).
    pub amplitude: f64,
    /// Hour of the day (0–24) at which the peak lands (default 20:00).
    pub peak_hour: f64,
}

impl Default for DiurnalConfig {
    fn default() -> DiurnalConfig {
        DiurnalConfig {
            period_s: 86_400.0,
            amplitude: 3.0,
            peak_hour: 20.0,
        }
    }
}

impl DiurnalConfig {
    /// Validate invariants.
    ///
    /// # Panics
    /// Panics on a non-positive period, negative amplitude, or a peak hour
    /// outside `[0, 24]`.
    pub fn validate(&self) {
        assert!(self.period_s > 0.0, "period must be positive");
        assert!(self.amplitude >= 0.0, "amplitude cannot be negative");
        assert!(
            (0.0..=24.0).contains(&self.peak_hour),
            "peak hour must be in [0, 24]"
        );
    }

    /// Phase offset φ in seconds so that λ peaks at `peak_hour`.
    fn phase_s(&self) -> f64 {
        // The raised cosine 1 − cos(2π(t − φ)/P) peaks at t = φ + P/2.
        self.peak_hour / 24.0 * 86_400.0 - self.period_s / 2.0
    }

    /// Instantaneous (relative) arrival rate at time `t` seconds.
    pub fn rate(&self, t: f64) -> f64 {
        let x = TAU * (t - self.phase_s()) / self.period_s;
        1.0 + self.amplitude * (1.0 - x.cos()) / 2.0
    }

    /// Cumulative rate `Λ(t) = ∫₀ᵗ λ(s) ds`, in closed form.
    pub fn cumulative(&self, t: f64) -> f64 {
        let phi = self.phase_s();
        let integral = |u: f64| -> f64 {
            // ∫ 1 + a(1 − cos(2π(u−φ)/P))/2 du
            //   = (1 + a/2)·u − (aP / 4π)·sin(2π(u−φ)/P)
            (1.0 + self.amplitude / 2.0) * u
                - self.amplitude * self.period_s / (2.0 * TAU)
                    * (TAU * (u - phi) / self.period_s).sin()
        };
        integral(t) - integral(0.0)
    }

    /// Invert the cumulative rate over `[0, horizon_s]`: the unique `t`
    /// with `Λ(t) = target`, found by bisection (Λ is strictly
    /// increasing; 64 iterations pin the result to one ULP of the
    /// interval, making the inversion bit-stable across platforms).
    pub fn inverse_cumulative(&self, target: f64, horizon_s: f64) -> f64 {
        let total = self.cumulative(horizon_s);
        let clamped = target.clamp(0.0, total);
        let mut lo = 0.0f64;
        let mut hi = horizon_s;
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if self.cumulative(mid) < clamped {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Map a uniform draw `u ∈ [0, 1)` to an arrival time in
    /// `[0, horizon_s]` with density `λ(t)/Λ(horizon_s)` — the
    /// conditional-NHPP arrival placement described in the module docs.
    pub fn arrival_from_uniform(&self, u: f64, horizon_s: f64) -> f64 {
        self.inverse_cumulative(u * self.cumulative(horizon_s), horizon_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_peaks_at_peak_hour_and_troughs_opposite() {
        let d = DiurnalConfig::default();
        let peak = d.rate(20.0 / 24.0 * 86_400.0);
        let trough = d.rate(8.0 / 24.0 * 86_400.0);
        assert!((peak - 4.0).abs() < 1e-9, "peak {peak}");
        assert!((trough - 1.0).abs() < 1e-9, "trough {trough}");
    }

    #[test]
    fn cumulative_matches_numeric_integral() {
        let d = DiurnalConfig::default();
        let t = 50_000.0;
        let steps = 200_000;
        let dt = t / steps as f64;
        let numeric: f64 = (0..steps).map(|i| d.rate((i as f64 + 0.5) * dt) * dt).sum();
        let closed = d.cumulative(t);
        assert!(
            (numeric - closed).abs() / closed < 1e-6,
            "numeric {numeric} vs closed {closed}"
        );
    }

    #[test]
    fn inverse_round_trips() {
        let d = DiurnalConfig::default();
        let horizon = 86_400.0;
        for k in 0..20 {
            let t = horizon * k as f64 / 20.0;
            let back = d.inverse_cumulative(d.cumulative(t), horizon);
            assert!((back - t).abs() < 1e-6, "t {t} round-tripped to {back}");
        }
    }

    #[test]
    fn uniform_mapping_is_monotone_and_spans_horizon() {
        let d = DiurnalConfig::default();
        let horizon = 3_600.0;
        let mut prev = -1.0;
        for k in 0..=100 {
            let u = k as f64 / 100.0;
            let t = d.arrival_from_uniform(u, horizon);
            assert!(t >= prev, "monotone");
            assert!((0.0..=horizon).contains(&t));
            prev = t;
        }
        assert!(d.arrival_from_uniform(0.0, horizon) < 1e-6);
        assert!((d.arrival_from_uniform(1.0, horizon) - horizon).abs() < 1e-6);
    }

    #[test]
    fn flat_curve_when_amplitude_zero() {
        let d = DiurnalConfig {
            amplitude: 0.0,
            ..DiurnalConfig::default()
        };
        // λ ≡ 1: arrivals are uniform.
        let t = d.arrival_from_uniform(0.25, 1000.0);
        assert!((t - 250.0).abs() < 1e-6, "{t}");
    }

    #[test]
    #[should_panic]
    fn bad_peak_hour_rejected() {
        DiurnalConfig {
            peak_hour: 25.0,
            ..DiurnalConfig::default()
        }
        .validate();
    }
}
