#![deny(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
//! # counted-alloc — a counting global allocator
//!
//! A zero-dependency, `std`-only wrapper around [`std::alloc::System`]
//! that counts every allocation (and its size in bytes) twice: into a pair
//! of process-wide atomics and into per-thread `Cell` counters. Install it
//! in a **leaf binary or test target** behind a feature flag:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: counted_alloc::CountingAlloc = counted_alloc::CountingAlloc::new();
//! ```
//!
//! and bracket the code under measurement with an [`AllocScope`]:
//!
//! ```ignore
//! let scope = counted_alloc::AllocScope::thread();
//! hot_path();
//! assert_eq!(scope.delta().allocs, 0);
//! ```
//!
//! Two scope flavors cover the two measurement shapes this repo needs:
//!
//! * [`AllocScope::thread`] counts only allocations made **by the calling
//!   thread** — exact even while unrelated threads allocate, the right tool
//!   for in-process hot-path assertions.
//! * [`AllocScope::global`] counts allocations made **anywhere in the
//!   process** — the right tool for socket-path measurements where the
//!   serving work happens on reactor/worker threads, provided the process
//!   is otherwise quiescent for the duration of the scope.
//!
//! Design constraints, all load-bearing:
//!
//! * The counting paths perform **no allocation themselves**: the
//!   thread-local counters are `const`-initialized (no lazy init box) and
//!   accessed with `try_with` so allocations during TLS teardown are
//!   silently dropped from the per-thread books instead of aborting.
//! * `realloc` and `alloc_zeroed` count as one allocation of the new size —
//!   a growing `Vec` that doubles is allocator traffic, and hiding it would
//!   let "amortized" growth leak through a zero-allocation gate.
//! * Deallocations are deliberately **not** tracked: the gates in this repo
//!   assert "no allocator traffic on the hot path", not "no net growth".
//! * This crate reads no clock and no entropy (lint R1/R3 scope) and counts
//!   with `Relaxed` atomics — counters are statistics, not synchronization.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static GLOBAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static THREAD_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// An allocation-count snapshot: how many allocator calls, how many bytes
/// requested.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counts {
    /// Allocator calls (`alloc` + `alloc_zeroed` + `realloc`).
    pub allocs: u64,
    /// Bytes requested across those calls (for `realloc`, the new size).
    pub bytes: u64,
}

impl Counts {
    /// Counts accumulated since `earlier` (saturating, so a snapshot pair
    /// taken out of order reads 0 instead of wrapping).
    pub fn since(self, earlier: Counts) -> Counts {
        Counts {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// Process-wide counts since the allocator was installed.
pub fn global_counts() -> Counts {
    Counts {
        allocs: GLOBAL_ALLOCS.load(Ordering::Relaxed),
        bytes: GLOBAL_BYTES.load(Ordering::Relaxed),
    }
}

/// Counts for the calling thread since it started.
pub fn thread_counts() -> Counts {
    Counts {
        allocs: THREAD_ALLOCS.try_with(Cell::get).unwrap_or(0),
        bytes: THREAD_BYTES.try_with(Cell::get).unwrap_or(0),
    }
}

/// True when a [`CountingAlloc`] is actually installed as the global
/// allocator in this process. Gates that forget to install it would
/// otherwise read an eternal zero and pass vacuously — callers probe first
/// and refuse to report numbers the allocator never produced.
pub fn counting_enabled() -> bool {
    let before = thread_counts();
    std::hint::black_box(Box::new(0u8));
    thread_counts().since(before).allocs > 0
}

#[inline]
fn record(bytes: u64) {
    GLOBAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    GLOBAL_BYTES.fetch_add(bytes, Ordering::Relaxed);
    // TLS may already be torn down while thread-exit destructors run;
    // those stragglers stay in the global books only.
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
    let _ = THREAD_BYTES.try_with(|c| c.set(c.get() + bytes));
}

/// The counting allocator: [`std::alloc::System`] plus bookkeeping. A unit
/// struct so it can be `const`-constructed in a `#[global_allocator]`
/// static.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

impl CountingAlloc {
    /// A new counting allocator (all instances share the same counters).
    pub const fn new() -> CountingAlloc {
        CountingAlloc
    }
}

// SAFETY: every method delegates directly to `System`, which upholds the
// `GlobalAlloc` contract; the added bookkeeping touches only atomics and
// `const`-initialized thread-locals, neither of which can allocate or
// unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record(layout.size() as u64);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record(layout.size() as u64);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        record(new_size as u64);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Which counter stream an [`AllocScope`] watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScopeKind {
    Thread,
    Global,
}

/// A measurement scope: snapshots the chosen counter stream at
/// construction; [`AllocScope::delta`] reports what accumulated since.
/// Scopes nest freely — each holds its own starting snapshot, so an inner
/// scope's delta is always a subset of the enclosing one's.
#[derive(Debug)]
pub struct AllocScope {
    kind: ScopeKind,
    start: Counts,
}

impl AllocScope {
    /// Scope over the calling thread's allocations only.
    pub fn thread() -> AllocScope {
        AllocScope {
            kind: ScopeKind::Thread,
            start: thread_counts(),
        }
    }

    /// Scope over every thread's allocations (process-wide).
    pub fn global() -> AllocScope {
        AllocScope {
            kind: ScopeKind::Global,
            start: global_counts(),
        }
    }

    /// Allocator traffic since the scope began.
    pub fn delta(&self) -> Counts {
        let now = match self.kind {
            ScopeKind::Thread => thread_counts(),
            ScopeKind::Global => global_counts(),
        };
        now.since(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary installs the allocator so the counters actually move;
    // unit tests and the integration suites downstream share this pattern.
    #[global_allocator]
    static ALLOC: CountingAlloc = CountingAlloc::new();

    #[test]
    fn counting_is_installed() {
        assert!(counting_enabled());
    }

    #[test]
    fn thread_scope_counts_own_allocations() {
        let scope = AllocScope::thread();
        let v: Vec<u64> = Vec::with_capacity(32);
        std::hint::black_box(&v);
        let after_one = scope.delta();
        assert_eq!(after_one.allocs, 1);
        assert_eq!(after_one.bytes, 32 * 8);
        drop(v); // deallocations are not counted
        assert_eq!(scope.delta(), after_one);
    }

    #[test]
    fn thread_scope_ignores_other_threads() {
        const CHILD_BYTES: usize = 64 * 1024 * 1024;
        let scope = AllocScope::thread();
        std::thread::spawn(|| {
            std::hint::black_box(vec![0u8; CHILD_BYTES]);
        })
        .join()
        .unwrap();
        // `thread::spawn` itself allocates on the caller (boxed closure,
        // join-handle plumbing) — but the child's 64 MiB buffer must not
        // land on this thread's byte counter.
        assert!(
            scope.delta().bytes < CHILD_BYTES as u64,
            "child-thread allocation attributed to the spawning thread"
        );
    }

    #[test]
    fn other_threads_attribute_to_their_own_counter() {
        let counted = std::thread::spawn(|| {
            let scope = AllocScope::thread();
            std::hint::black_box(vec![0u8; 128]);
            scope.delta()
        })
        .join()
        .unwrap();
        assert_eq!(counted.allocs, 1);
        assert_eq!(counted.bytes, 128);
    }

    #[test]
    fn global_scope_sees_other_threads() {
        let scope = AllocScope::global();
        std::thread::spawn(|| {
            std::hint::black_box(vec![0u8; 512]);
        })
        .join()
        .unwrap();
        let delta = scope.delta();
        assert!(delta.allocs >= 1, "spawned thread's vec not counted");
        assert!(delta.bytes >= 512);
    }

    #[test]
    fn scopes_nest() {
        let outer = AllocScope::thread();
        std::hint::black_box(Box::new([0u8; 64]));
        let inner = AllocScope::thread();
        std::hint::black_box(Box::new([0u8; 16]));
        let inner_delta = inner.delta();
        let outer_delta = outer.delta();
        assert_eq!(inner_delta.allocs, 1);
        assert_eq!(inner_delta.bytes, 16);
        assert_eq!(outer_delta.allocs, 2);
        assert_eq!(outer_delta.bytes, 64 + 16);
    }

    #[test]
    fn realloc_counts_as_new_traffic() {
        let mut v: Vec<u8> = Vec::with_capacity(8);
        v.extend_from_slice(&[0; 8]);
        let scope = AllocScope::thread();
        v.extend_from_slice(&[0; 8]); // forces growth: realloc to >= 16
        std::hint::black_box(&v);
        assert!(scope.delta().allocs >= 1, "vec growth must be visible");
    }

    #[test]
    fn since_saturates_instead_of_wrapping() {
        let later = Counts {
            allocs: 5,
            bytes: 100,
        };
        let earlier = Counts {
            allocs: 7,
            bytes: 50,
        };
        let d = later.since(earlier);
        assert_eq!(d.allocs, 0);
        assert_eq!(d.bytes, 50);
    }
}
