// Fixture: a crate root missing `#![forbid(unsafe_code)]` (R6). The
// commented-out attribute below must not count. Never compiled.

// #![forbid(unsafe_code)]

//! A crate root with docs but no unsafe-code forbid.

pub fn noop() {}
