// Fixture: deliberately violates R1 (wall-clock read in a sim crate).
// Never compiled — scanned by tests/lint_rules.rs with a pretend path.

use std::time::{Instant, SystemTime, UNIX_EPOCH};

pub fn chunk_deadline_s() -> f64 {
    let started = Instant::now(); // R1: wall clock inside the simulator
    let _epoch = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs_f64());
    started.elapsed().as_secs_f64()
}
