// Fixture: deliberately violates R3 (OS entropy). Never compiled.

use rand::rngs::OsRng;
use rand::{thread_rng, Rng, SeedableRng};

pub fn jitter_ms() -> u64 {
    let mut rng = thread_rng(); // R3: unseeded OS entropy
    let _os = OsRng;
    let _also = rand::rngs::StdRng::from_entropy();
    let _r: f64 = rand::random();
    rng.gen_range(0..10)
}
