//! R9 fixture: narrowing casts in an encode path. The unguarded `as u32`
//! must be flagged; the `try_from`- and `MAX`-guarded casts and the
//! widening `as u64` must not.

pub fn unguarded(len: usize, out: &mut Vec<u8>) {
    out.extend_from_slice(&(len as u32).to_le_bytes());
}

pub fn guarded_by_try_from(len: usize, out: &mut Vec<u8>) {
    let len = u32::try_from(len).unwrap_or(u32::MAX);
    out.extend_from_slice(&(len as u16).to_le_bytes());
}

pub fn guarded_by_bound_check(len: u64, max_len: u64) -> usize {
    assert!(len <= max_len);
    len as usize
}

pub fn widening_is_fine(x: u16) -> u64 {
    x as u64
}
