//! R7 fixture, file B: callees of the root in file A. `deep_helper`
//! allocates two levels down the chain (must be flagged with the chain in
//! the message); `unreachable_alloc` allocates but nothing hot calls it
//! (must NOT be flagged); `Telemetry::emit` is marked cold, so its
//! allocation is exempt too.

pub fn deep_helper(x: usize) -> usize {
    let v = vec![0usize; x];
    v.len()
}

pub fn unreachable_alloc() -> Vec<u8> {
    let mut out = Vec::new();
    out.push(1);
    out
}

pub struct Telemetry;

impl Telemetry {
    // abr-lint: cold — diagnostics formatting, off the decision path
    pub fn emit(y: usize) {
        let _ = format!("emit {y}");
    }
}
