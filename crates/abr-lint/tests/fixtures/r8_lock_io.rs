//! R8 fixture: lock guards vs blocking I/O. `held_across_write` must be
//! flagged; `dropped_before_write` and `scoped_before_write` must not.

use std::io::Write;
use std::sync::Mutex;

pub fn held_across_write(m: &Mutex<u64>, w: &mut impl Write) {
    let mut guard = m.lock().unwrap_or_else(|e| e.into_inner());
    *guard += 1;
    let _ = w.write_all(b"frame");
}

pub fn dropped_before_write(m: &Mutex<u64>, w: &mut impl Write) {
    let mut guard = m.lock().unwrap_or_else(|e| e.into_inner());
    *guard += 1;
    drop(guard);
    let _ = w.write_all(b"frame");
}

pub fn scoped_before_write(m: &Mutex<u64>, w: &mut impl Write) {
    {
        let mut guard = m.lock().unwrap_or_else(|e| e.into_inner());
        *guard += 1;
    }
    let _ = w.flush();
}
