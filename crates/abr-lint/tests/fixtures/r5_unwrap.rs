// Fixture: deliberately violates R5 (panicking on I/O and parse results in
// library code). Never compiled.

use std::fs;
use std::path::Path;

pub fn load_trace(path: &Path) -> Vec<f64> {
    let text = fs::read_to_string(path).unwrap(); // R5: I/O unwrap
    text.lines()
        .map(|l| l.parse::<f64>().expect("parse sample")) // R5: parse expect
        .collect()
}

#[cfg(test)]
mod tests {
    // Unwraps in test code are exempt and must NOT be flagged.
    #[test]
    fn exempt() {
        let v: Result<u32, ()> = Ok(1);
        assert_eq!(v.unwrap(), 1);
    }
}
