// R7 fixture: reactor-style sweep helpers as hot-path roots (mirrors
// abr-serve's reactor.rs, where `pump`/`fill`/`drain_frames` are marked).
// The sweep methods reuse preallocated buffers — `.resize(` and
// `.extend_from_slice(` are not allocation patterns — while a formatter
// they reach heap-allocates and must be flagged with a witness chain
// through the sweep helper.

pub struct Conn {
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
}

impl Conn {
    // abr-lint: hot-path
    fn pump(&mut self) {
        self.fill();
        self.drain_frames();
    }

    // abr-lint: hot-path
    fn fill(&mut self) {
        self.rbuf.resize(4096, 0);
    }

    // abr-lint: hot-path
    fn drain_frames(&mut self) {
        encode_reply(&mut self.wbuf);
    }
}

fn encode_reply(out: &mut Vec<u8>) {
    out.extend_from_slice(b"ok");
    let tag = format!("frame");
    let _ = tag;
}

// abr-lint: cold
fn teardown_report() -> Vec<String> {
    vec![String::from("closed")]
}
