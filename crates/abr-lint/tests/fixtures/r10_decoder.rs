//! R10 fixture decoder: three record types, in sync with
//! `r10_spec.md`. Tests introduce drift by appending lines to copies of
//! these fixtures.

const EV_RUN_META: u8 = 0x01;
const EV_DECISION: u8 = 0x02;
const EV_RUN_END: u8 = 0x03;

pub enum Event {
    RunMeta { label: String, seed: u64 },
    Decision { tick: u64, level: u64 },
    RunEnd { events: u64 },
}

pub fn decode(ty: u8) -> Result<&'static str, u8> {
    match ty {
        EV_RUN_META => Ok("run-meta"),
        EV_DECISION => Ok("decision"),
        EV_RUN_END => Ok("run-end"),
        other => Err(other),
    }
}
