//! R10 fixture decoder: five record types, in sync with
//! `r10_spec.md`. Tests introduce drift by appending lines to copies of
//! these fixtures.

const EV_RUN_META: u8 = 0x01;
const EV_DECISION: u8 = 0x02;
const EV_RUN_END: u8 = 0x03;
const EV_SESSION_ABANDON: u8 = 0x04;
const EV_SEEK: u8 = 0x05;

pub enum Event {
    RunMeta { label: String, seed: u64 },
    Decision { tick: u64, level: u64 },
    RunEnd { events: u64 },
    SessionAbandon { session_id: u64, watched_s: f64 },
    Seek { session_id: u64, to_chunk: u64 },
}

pub fn decode(ty: u8) -> Result<&'static str, u8> {
    match ty {
        EV_RUN_META => Ok("run-meta"),
        EV_DECISION => Ok("decision"),
        EV_RUN_END => Ok("run-end"),
        EV_SESSION_ABANDON => Ok("session-abandon"),
        EV_SEEK => Ok("seek"),
        other => Err(other),
    }
}
