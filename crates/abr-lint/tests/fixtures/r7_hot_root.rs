//! R7 fixture, file A: the hot-path root. `decide` is marked, calls into
//! file B (`r7_hot_callees.rs`) both by bare name and by qualified path.

pub struct Store;

impl Store {
    // abr-lint: hot-path
    pub fn decide(&self, x: usize) -> usize {
        let y = prepare(x);
        Telemetry::emit(y);
        y
    }
}

fn prepare(x: usize) -> usize {
    deep_helper(x)
}
