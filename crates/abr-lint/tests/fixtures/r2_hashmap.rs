// Fixture: deliberately violates R2 (unordered hash collections in an
// output-producing crate). Never compiled.

use std::collections::{HashMap, HashSet};

pub fn summarize(rows: &[(String, f64)]) -> String {
    let mut by_scheme: HashMap<String, f64> = HashMap::new();
    let mut seen: HashSet<&str> = HashSet::new();
    for (scheme, v) in rows {
        by_scheme.insert(scheme.clone(), *v);
        seen.insert(scheme);
    }
    // Iteration order here is nondeterministic — the exact bug class R2 bans.
    by_scheme
        .iter()
        .map(|(k, v)| format!("{k},{v}\n"))
        .collect()
}
