// Fixture: violation-free code. Mentions of banned constructs appear only
// in comments ("Instant::now, HashMap, thread_rng") and strings, which the
// scanner must ignore. Never compiled.

use std::collections::BTreeMap;

/// Doc example that must not trip R5:
/// ```
/// let x = Some(1).unwrap();
/// ```
pub fn summarize(rows: &[(String, f64)]) -> BTreeMap<String, f64> {
    let note = "HashMap and SystemTime::now are fine inside string literals";
    let _ = note;
    let mut out = BTreeMap::new();
    for (k, v) in rows {
        out.insert(k.clone(), *v);
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<f64> = Some(0.0);
        assert!(v.unwrap() == 0.0);
    }
}
