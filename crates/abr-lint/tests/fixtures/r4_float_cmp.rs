// Fixture: deliberately violates R4 (exact float comparison in ABR
// decision logic). Never compiled.

pub fn should_switch_up(buffer_s: f64, target_s: f64) -> bool {
    if buffer_s == 0.0 {
        // R4: exact equality on a simulated-clock-derived float
        return false;
    }
    if 1.5 != target_s {
        return true;
    }
    buffer_s > target_s // comparison operators other than ==/!= are fine
}
