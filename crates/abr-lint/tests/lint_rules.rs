//! Fixture-driven rule tests (one per rule R1–R6) plus the clean-tree test:
//! the linter run over the real workspace must report zero violations.

#![allow(clippy::unwrap_used)]

use abr_lint::{check_crate_root, check_file, lint_workspace};
use std::path::Path;

fn rules_hit(rel_path: &str, source: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = check_file(rel_path, source)
        .into_iter()
        .map(|v| v.rule)
        .collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

#[test]
fn r1_detects_wall_clock_in_sim_crate() {
    let src = include_str!("fixtures/r1_wallclock.rs");
    let hits = check_file("crates/abr-sim/src/fixture.rs", src);
    assert!(
        hits.iter().filter(|v| v.rule == "R1").count() >= 2,
        "both Instant::now and SystemTime::now must be flagged: {hits:?}"
    );
    // The same file is fine in a crate where wall-clock is allowed.
    assert!(check_file("crates/cli/src/fixture.rs", src).is_empty());
}

#[test]
fn r2_detects_hash_collections_in_output_crate() {
    let src = include_str!("fixtures/r2_hashmap.rs");
    let hits = check_file("crates/bench/src/fixture.rs", src);
    let r2 = hits.iter().filter(|v| v.rule == "R2").count();
    assert!(
        r2 >= 2,
        "HashMap and HashSet must both be flagged: {hits:?}"
    );
    assert_eq!(rules_hit("crates/sim-report/src/fixture.rs", src), ["R2"]);
    // Non-output crates may use hash collections internally.
    assert!(check_file("crates/net-trace/src/fixture.rs", src).is_empty());
}

#[test]
fn r3_detects_os_entropy_everywhere() {
    let src = include_str!("fixtures/r3_entropy.rs");
    for path in [
        "crates/net-trace/src/fixture.rs",
        "crates/bench/src/fixture.rs",
        "src/fixture.rs",
    ] {
        let hits = check_file(path, src);
        let r3 = hits.iter().filter(|v| v.rule == "R3").count();
        assert!(
            r3 >= 4,
            "{path}: thread_rng, OsRng, from_entropy, rand::random: {hits:?}"
        );
    }
}

#[test]
fn r4_detects_exact_float_comparison_in_decision_logic() {
    let src = include_str!("fixtures/r4_float_cmp.rs");
    let hits = check_file("crates/core/src/fixture.rs", src);
    let r4: Vec<_> = hits.iter().filter(|v| v.rule == "R4").collect();
    assert_eq!(r4.len(), 2, "== 0.0 and 1.5 != both flagged: {hits:?}");
    // Ordering comparisons (`>`) must not be flagged.
    assert!(hits.iter().all(|v| !v.snippet.contains('>')));
    // Outside algorithm crates the rule is off.
    assert!(check_file("crates/sim-report/src/fixture.rs", src).is_empty());
}

#[test]
fn r5_detects_unwrap_and_expect_in_library_code_only() {
    let src = include_str!("fixtures/r5_unwrap.rs");
    let hits = check_file("crates/net-trace/src/fixture.rs", src);
    let r5: Vec<_> = hits.iter().filter(|v| v.rule == "R5").collect();
    assert_eq!(r5.len(), 2, "I/O unwrap and parse expect flagged: {hits:?}");
    // The `#[cfg(test)]` unwrap in the fixture must NOT be among them.
    assert!(r5.iter().all(|v| !v.snippet.contains("v.unwrap()")));
    // Harness crates (bench, cli) are out of R5's scope.
    assert!(check_file("crates/bench/src/fixture.rs", src).is_empty());
}

#[test]
fn r6_detects_missing_forbid_unsafe_code() {
    let src = include_str!("fixtures/r6_missing_forbid.rs");
    let hits = check_crate_root("crates/x/src/lib.rs", src);
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].rule, "R6");
    assert!(check_crate_root(
        "crates/x/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn f() {}\n"
    )
    .is_empty());
}

#[test]
fn clean_fixture_is_clean() {
    let src = include_str!("fixtures/clean.rs");
    // Run it under the strictest path (an output + library crate).
    assert!(check_file("crates/sim-report/src/fixture.rs", src).is_empty());
}

#[test]
fn clean_tree_zero_violations() {
    // CARGO_MANIFEST_DIR = crates/abr-lint → workspace root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let report = lint_workspace(&root).expect("lint run");
    assert!(report.files_scanned > 50, "walker found the source tree");
    assert!(
        report.allow_errors.is_empty(),
        "allowlist format errors: {:?}",
        report.allow_errors
    );
    let rendered: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
    assert!(
        report.violations.is_empty(),
        "workspace must lint clean:\n{}",
        rendered.join("\n")
    );
    assert!(
        report.unused_allows.is_empty(),
        "stale allowlist entries: {:?}",
        report.unused_allows
    );
}
