//! Fixture-driven rule tests (one per rule R1–R10) plus the clean-tree
//! test: the linter run over the real workspace must report zero
//! violations with every rule armed.

#![allow(clippy::unwrap_used)]

use abr_lint::{
    check_crate_hot_paths, check_crate_root, check_file, check_spec_drift, lint_workspace,
};
use std::path::Path;

fn rules_hit(rel_path: &str, source: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = check_file(rel_path, source)
        .into_iter()
        .map(|v| v.rule)
        .collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

#[test]
fn r1_detects_wall_clock_in_sim_crate() {
    let src = include_str!("fixtures/r1_wallclock.rs");
    let hits = check_file("crates/abr-sim/src/fixture.rs", src);
    assert!(
        hits.iter().filter(|v| v.rule == "R1").count() >= 2,
        "both Instant::now and SystemTime::now must be flagged: {hits:?}"
    );
    // The same file is fine in a crate where wall-clock is allowed.
    assert!(check_file("crates/cli/src/fixture.rs", src).is_empty());
}

#[test]
fn r2_detects_hash_collections_in_output_crate() {
    let src = include_str!("fixtures/r2_hashmap.rs");
    let hits = check_file("crates/bench/src/fixture.rs", src);
    let r2 = hits.iter().filter(|v| v.rule == "R2").count();
    assert!(
        r2 >= 2,
        "HashMap and HashSet must both be flagged: {hits:?}"
    );
    assert_eq!(rules_hit("crates/sim-report/src/fixture.rs", src), ["R2"]);
    // Non-output crates may use hash collections internally.
    assert!(check_file("crates/net-trace/src/fixture.rs", src).is_empty());
}

#[test]
fn r3_detects_os_entropy_everywhere() {
    let src = include_str!("fixtures/r3_entropy.rs");
    for path in [
        "crates/net-trace/src/fixture.rs",
        "crates/bench/src/fixture.rs",
        "src/fixture.rs",
    ] {
        let hits = check_file(path, src);
        let r3 = hits.iter().filter(|v| v.rule == "R3").count();
        assert!(
            r3 >= 4,
            "{path}: thread_rng, OsRng, from_entropy, rand::random: {hits:?}"
        );
    }
}

#[test]
fn r4_detects_exact_float_comparison_in_decision_logic() {
    let src = include_str!("fixtures/r4_float_cmp.rs");
    let hits = check_file("crates/core/src/fixture.rs", src);
    let r4: Vec<_> = hits.iter().filter(|v| v.rule == "R4").collect();
    assert_eq!(r4.len(), 2, "== 0.0 and 1.5 != both flagged: {hits:?}");
    // Ordering comparisons (`>`) must not be flagged.
    assert!(hits.iter().all(|v| !v.snippet.contains('>')));
    // Outside algorithm crates the rule is off.
    assert!(check_file("crates/sim-report/src/fixture.rs", src).is_empty());
}

#[test]
fn r5_detects_unwrap_and_expect_in_library_code_only() {
    let src = include_str!("fixtures/r5_unwrap.rs");
    let hits = check_file("crates/net-trace/src/fixture.rs", src);
    let r5: Vec<_> = hits.iter().filter(|v| v.rule == "R5").collect();
    assert_eq!(r5.len(), 2, "I/O unwrap and parse expect flagged: {hits:?}");
    // The `#[cfg(test)]` unwrap in the fixture must NOT be among them.
    assert!(r5.iter().all(|v| !v.snippet.contains("v.unwrap()")));
    // Harness crates (bench, cli) are out of R5's scope.
    assert!(check_file("crates/bench/src/fixture.rs", src).is_empty());
}

#[test]
fn r6_detects_missing_forbid_unsafe_code() {
    let src = include_str!("fixtures/r6_missing_forbid.rs");
    let hits = check_crate_root("crates/x/src/lib.rs", src);
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].rule, "R6");
    assert!(check_crate_root(
        "crates/x/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn f() {}\n"
    )
    .is_empty());
}

#[test]
fn r7_flags_allocations_reachable_from_hot_roots_across_files() {
    let files = vec![
        (
            "crates/x/src/root.rs".to_string(),
            include_str!("fixtures/r7_hot_root.rs").to_string(),
        ),
        (
            "crates/x/src/callees.rs".to_string(),
            include_str!("fixtures/r7_hot_callees.rs").to_string(),
        ),
    ];
    let hits = check_crate_hot_paths(&files);
    // Only deep_helper's allocation is hot: unreachable_alloc has no hot
    // caller and Telemetry::emit is marked cold.
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].rule, "R7");
    assert_eq!(hits[0].path, "crates/x/src/callees.rs");
    assert!(
        hits[0]
            .message
            .contains("Store::decide -> prepare -> deep_helper"),
        "witness chain in the message: {}",
        hits[0].message
    );
}

#[test]
fn r7_seeds_from_reactor_sweep_helpers() {
    let files = vec![(
        "crates/x/src/reactor.rs".to_string(),
        include_str!("fixtures/r7_sweep_helpers.rs").to_string(),
    )];
    let hits = check_crate_hot_paths(&files);
    // The sweep helpers reuse preallocated buffers (`.resize(`,
    // `.extend_from_slice(` are reuse, not allocation) and the cold
    // teardown report never enters the hot set; only the formatter
    // reached from `drain_frames` allocates.
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].rule, "R7");
    assert!(
        hits[0].message.contains("format!"),
        "pattern in the message: {}",
        hits[0].message
    );
    assert!(
        hits[0].message.contains("drain_frames"),
        "witness chain through the sweep helper: {}",
        hits[0].message
    );
}

#[test]
fn r7_without_markers_finds_nothing() {
    let files = vec![(
        "crates/x/src/a.rs".to_string(),
        "fn alloc_freely() -> Vec<u8> { vec![1, 2, 3] }\n".to_string(),
    )];
    assert!(check_crate_hot_paths(&files).is_empty());
}

#[test]
fn r8_flags_guard_held_across_io_but_not_released_guards() {
    let src = include_str!("fixtures/r8_lock_io.rs");
    let hits = check_file("crates/abr-serve/src/fixture.rs", src);
    let r8: Vec<_> = hits.iter().filter(|v| v.rule == "R8").collect();
    assert_eq!(r8.len(), 1, "{hits:?}");
    assert!(r8[0].message.contains(".write_all("), "{}", r8[0].message);
    // The flagged site is in held_across_write, not the clean functions.
    let lock_line = src
        .lines()
        .position(|l| l.contains("pub fn held_across_write"))
        .unwrap();
    assert!(r8[0].line > lock_line && r8[0].line < lock_line + 4);
}

#[test]
fn r9_flags_only_unguarded_narrowing_casts_in_watched_files() {
    let src = include_str!("fixtures/r9_casts.rs");
    let hits = check_file("crates/abr-serve/src/protocol.rs", src);
    let r9: Vec<_> = hits.iter().filter(|v| v.rule == "R9").collect();
    assert_eq!(r9.len(), 1, "{hits:?}");
    assert!(r9[0].snippet.contains("len as u32"), "{}", r9[0].snippet);
    // The same source is out of scope elsewhere.
    assert!(check_file("crates/abr-serve/src/server.rs", src).is_empty());
}

const R10_SPEC: &str = include_str!("fixtures/r10_spec.md");
const R10_DECODER: &str = include_str!("fixtures/r10_decoder.rs");

#[test]
fn r10_in_sync_pair_is_clean() {
    let hits = check_spec_drift(
        "docs/spec.md",
        R10_SPEC,
        "crates/x/src/replay.rs",
        R10_DECODER,
    );
    assert!(hits.is_empty(), "{hits:?}");
}

#[test]
fn r10_record_type_added_to_decoder_without_spec_row_fails() {
    // The acceptance-criteria direction: a new record type in the decoder
    // with no documentation row must fail the lint.
    let decoder = format!("{R10_DECODER}const EV_FAULT_INJECTED: u8 = 0x06;\n");
    let hits = check_spec_drift("docs/spec.md", R10_SPEC, "crates/x/src/replay.rs", &decoder);
    assert!(
        hits.iter()
            .any(|v| v.rule == "R10" && v.message.contains("has no row")),
        "undocumented record type must be reported: {hits:?}"
    );
    // The drift anchors on the decoder line that introduced it.
    assert!(hits
        .iter()
        .any(|v| v.path == "crates/x/src/replay.rs" && v.snippet.contains("EV_FAULT_INJECTED")));
}

#[test]
fn r10_spec_row_without_decoder_constant_fails() {
    let spec = format!("{R10_SPEC}| 0x06 | FaultInjected | `kind u8` |\n");
    let hits = check_spec_drift("docs/spec.md", &spec, "crates/x/src/replay.rs", R10_DECODER);
    assert!(
        hits.iter().any(|v| v.rule == "R10"
            && v.path == "docs/spec.md"
            && v.message.contains("no constant with that value")),
        "spec-only record type must be reported: {hits:?}"
    );
}

#[test]
fn r10_name_drift_between_spec_and_decoder_fails() {
    let spec = R10_SPEC.replace("| 0x02 | Decision |", "| 0x02 | Choice |");
    let hits = check_spec_drift("docs/spec.md", &spec, "crates/x/src/replay.rs", R10_DECODER);
    assert!(
        hits.iter()
            .any(|v| v.rule == "R10" && v.message.contains("`Choice`")),
        "name drift must be reported: {hits:?}"
    );
}

#[test]
fn r10_abandon_constant_without_spec_row_fails() {
    // Both drift directions for the population-workload rows. Direction
    // one: the decoder knows SessionAbandon but the spec row is gone.
    let spec = R10_SPEC.replace(
        "| 0x04 | SessionAbandon | `session_id u64`, `watched_s f64` |\n",
        "",
    );
    let hits = check_spec_drift("docs/spec.md", &spec, "crates/x/src/replay.rs", R10_DECODER);
    assert!(
        hits.iter().any(|v| v.rule == "R10"
            && v.snippet.contains("EV_SESSION_ABANDON")
            && v.message.contains("has no row")),
        "undocumented SessionAbandon must be reported: {hits:?}"
    );
}

#[test]
fn r10_seek_spec_row_without_decoder_fails() {
    // Direction two: the spec documents Seek but the decoder lost it.
    let decoder = R10_DECODER
        .replace("const EV_SEEK: u8 = 0x05;\n", "")
        .replace("    Seek { session_id: u64, to_chunk: u64 },\n", "")
        .replace("        EV_SEEK => Ok(\"seek\"),\n", "");
    assert!(
        decoder.len() < R10_DECODER.len(),
        "fixture edit took effect"
    );
    let hits = check_spec_drift("docs/spec.md", R10_SPEC, "crates/x/src/replay.rs", &decoder);
    assert!(
        hits.iter().any(|v| v.rule == "R10"
            && v.path == "docs/spec.md"
            && v.message.contains("no constant with that value")),
        "spec-only Seek row must be reported: {hits:?}"
    );
}

#[test]
fn r10_constant_without_match_arm_fails() {
    // Decode arm removed: the constant exists and is documented, but the
    // decoder never handles it.
    let decoder = R10_DECODER.replace("EV_RUN_END => Ok(\"run-end\"),", "");
    let hits = check_spec_drift("docs/spec.md", R10_SPEC, "crates/x/src/replay.rs", &decoder);
    assert!(
        hits.iter()
            .any(|v| v.rule == "R10" && v.message.contains("never matched")),
        "unhandled record type must be reported: {hits:?}"
    );
}

#[test]
fn clean_fixture_is_clean() {
    let src = include_str!("fixtures/clean.rs");
    // Run it under the strictest path (an output + library crate).
    assert!(check_file("crates/sim-report/src/fixture.rs", src).is_empty());
}

#[test]
fn clean_tree_zero_violations() {
    // CARGO_MANIFEST_DIR = crates/abr-lint → workspace root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let report = lint_workspace(&root).expect("lint run");
    assert!(report.files_scanned > 50, "walker found the source tree");
    assert!(
        report.allow_errors.is_empty(),
        "allowlist format errors: {:?}",
        report.allow_errors
    );
    let rendered: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
    assert!(
        report.violations.is_empty(),
        "workspace must lint clean:\n{}",
        rendered.join("\n")
    );
    assert!(
        report.unused_allows.is_empty(),
        "stale allowlist entries: {:?}",
        report.unused_allows
    );
}
