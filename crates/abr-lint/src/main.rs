#![forbid(unsafe_code)]
//! Command-line entry point:
//! `cargo run -p abr-lint [-- [--format text|json|github] [workspace-root]]`.
//!
//! Formats:
//! * `text` (default) — human-readable diagnostics plus a summary line;
//! * `json` — the schema-stable machine report ([`abr_lint::LintReport::to_json`]),
//!   written to stdout for CI to capture;
//! * `github` — one `::error file=…,line=…::…` workflow annotation per
//!   violation, so findings land on the PR diff.
//!
//! Exit status: 0 when clean, 1 on violations or allowlist format errors,
//! 2 on usage/I/O problems.

use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Github,
}

fn usage() -> ExitCode {
    eprintln!("usage: abr-lint [--format text|json|github] [workspace-root]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut format = Format::Text;
    let mut root_arg: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                format = match it.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some("github") => Format::Github,
                    _ => return usage(),
                };
            }
            "--help" | "-h" => {
                return usage();
            }
            _ if root_arg.is_none() && !arg.starts_with('-') => root_arg = Some(arg),
            _ => return usage(),
        }
    }

    let root = match root_arg {
        Some(path) => PathBuf::from(path),
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("abr-lint: cannot read current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match abr_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("abr-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match abr_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("abr-lint: {e}");
            return ExitCode::from(2);
        }
    };

    match format {
        Format::Text => {
            for err in &report.allow_errors {
                println!("abr-lint.allow:{}: {}", err.line, err.message);
            }
            for v in &report.violations {
                println!("{v}");
            }
            for a in &report.unused_allows {
                eprintln!(
                    "abr-lint.allow:{}: warning: unused allowlist entry `{a}`",
                    a.line
                );
            }
            println!(
                "abr-lint: {} file(s), {} violation(s), {} allowlisted",
                report.files_scanned,
                report.violations.len(),
                report.suppressed
            );
        }
        Format::Json => {
            print!("{}", report.to_json());
        }
        Format::Github => {
            for err in &report.allow_errors {
                println!(
                    "::error file=abr-lint.allow,line={},title=abr-lint::{}",
                    err.line, err.message
                );
            }
            for v in &report.violations {
                println!(
                    "::error file={},line={},title={}::{}",
                    v.path,
                    v.line.max(1),
                    v.rule,
                    v.message
                );
            }
            for a in &report.unused_allows {
                println!(
                    "::warning file=abr-lint.allow,line={},title=abr-lint::unused allowlist entry `{a}`",
                    a.line
                );
            }
        }
    }
    if report.violations.is_empty() && report.allow_errors.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
