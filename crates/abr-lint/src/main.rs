#![forbid(unsafe_code)]
//! Command-line entry point: `cargo run -p abr-lint [-- <workspace-root>]`.
//!
//! Exit status: 0 when clean, 1 on violations or allowlist format errors,
//! 2 on usage/I/O problems.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = match args.as_slice() {
        [] => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("abr-lint: cannot read current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match abr_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("abr-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
        [path] => PathBuf::from(path),
        _ => {
            eprintln!("usage: abr-lint [workspace-root]");
            return ExitCode::from(2);
        }
    };

    let report = match abr_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("abr-lint: {e}");
            return ExitCode::from(2);
        }
    };

    for err in &report.allow_errors {
        println!("abr-lint.allow:{}: {}", err.line, err.message);
    }
    for v in &report.violations {
        println!("{v}");
    }
    for a in &report.unused_allows {
        eprintln!(
            "abr-lint.allow:{}: warning: unused allowlist entry `{a}`",
            a.line
        );
    }
    println!(
        "abr-lint: {} file(s), {} violation(s), {} allowlisted",
        report.files_scanned,
        report.violations.len(),
        report.suppressed
    );
    if report.violations.is_empty() && report.allow_errors.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
