//! Conservative intra-crate call-graph approximation over parsed files.
//!
//! Edges are resolved in two tiers. A path call `Cur::new(..)` resolves
//! against *qualified* names first: if some function's `Type::name`
//! matches exactly, only those edges are added. Everything else — method
//! calls `x.foo(..)`, bare calls `foo(..)`, and path calls with no
//! qualified match (module paths, cross-crate types) — falls back to
//! linking *every* function named `foo` in the same crate. The fallback
//! over-approximates real dispatch (trait objects, shadowed free
//! functions, same-named methods on different types all merge), which is
//! exactly the right bias for rule R7: a function is considered hot if it
//! *might* run under a hot-path root, and false edges are pruned
//! explicitly with `// abr-lint: cold` markers or `abr-lint.allow`
//! entries rather than silently dropped.
//!
//! Cross-crate edges are not followed — each crate roots its own hot set
//! with its own markers (the decision path is marked in `core`,
//! `abr-baselines`, `abr-sim`, and `abr-serve` independently), so the
//! graph never needs whole-program resolution.

use crate::syntax::{FnItem, ParsedFile};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One function in the crate-wide index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnRef {
    /// Index into the file list the [`CrateGraph`] was built from.
    pub file: usize,
    /// Index into that file's [`ParsedFile::fns`].
    pub item: usize,
}

/// A hot function together with the marker-to-here call chain that made
/// it hot (qualified names, root first).
#[derive(Debug, Clone)]
pub struct HotFn {
    /// The function.
    pub fn_ref: FnRef,
    /// Call chain from a hot-path root to this function, e.g.
    /// `["read_frame", "read_frame_budgeted", "read_full"]`. A root's
    /// chain is just its own name.
    pub chain: Vec<String>,
}

/// The per-crate call graph: name-resolved edges over every parsed file
/// of one crate.
pub struct CrateGraph<'a> {
    files: &'a [ParsedFile],
    /// name -> all functions bearing it (production code only).
    by_name: BTreeMap<&'a str, Vec<FnRef>>,
    /// qualified `Type::name` -> its functions (production code only).
    by_qualified: BTreeMap<&'a str, Vec<FnRef>>,
}

impl<'a> CrateGraph<'a> {
    /// Index `files` (all parsed files of one crate, any order).
    pub fn build(files: &'a [ParsedFile]) -> CrateGraph<'a> {
        let mut by_name: BTreeMap<&'a str, Vec<FnRef>> = BTreeMap::new();
        let mut by_qualified: BTreeMap<&'a str, Vec<FnRef>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (ii, f) in file.fns.iter().enumerate() {
                if f.is_test {
                    continue;
                }
                let r = FnRef { file: fi, item: ii };
                by_name.entry(f.name.as_str()).or_default().push(r);
                by_qualified
                    .entry(f.qualified.as_str())
                    .or_default()
                    .push(r);
            }
        }
        CrateGraph {
            files,
            by_name,
            by_qualified,
        }
    }

    /// The parsed item behind a reference.
    pub fn item(&self, r: FnRef) -> &'a FnItem {
        &self.files[r.file].fns[r.item]
    }

    /// Resolve a call key from [`FnItem::calls`]: qualified keys
    /// (`"Cur::new"`) match qualified function names exactly when any
    /// exist, otherwise fall back to bare-name resolution on the last
    /// segment (conservative over-approximation).
    fn resolve(&self, callee: &str) -> &[FnRef] {
        if callee.contains("::") {
            if let Some(hits) = self.by_qualified.get(callee) {
                return hits;
            }
        }
        let bare = callee.rsplit("::").next().unwrap_or(callee);
        self.by_name.get(bare).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Breadth-first reachability from every `// abr-lint: hot-path` root,
    /// following name-resolved call edges, stopping at `// abr-lint: cold`
    /// functions (the cold function itself is *not* hot). Returns hot
    /// functions with a witness chain, ordered by (file, item) so output
    /// is deterministic.
    pub fn hot_set(&self) -> Vec<HotFn> {
        let mut chains: BTreeMap<(usize, usize), Vec<String>> = BTreeMap::new();
        let mut queue: VecDeque<FnRef> = VecDeque::new();
        for (fi, file) in self.files.iter().enumerate() {
            for (ii, f) in file.fns.iter().enumerate() {
                if f.hot_marker && !f.is_test && !f.cold_marker {
                    let r = FnRef { file: fi, item: ii };
                    chains.insert((fi, ii), vec![f.qualified.clone()]);
                    queue.push_back(r);
                }
            }
        }
        let mut seen: BTreeSet<(usize, usize)> = chains.keys().copied().collect();
        while let Some(r) = queue.pop_front() {
            let here = self.item(r);
            let chain = chains[&(r.file, r.item)].clone();
            for callee in &here.calls {
                for &next in self.resolve(callee) {
                    let key = (next.file, next.item);
                    if seen.contains(&key) {
                        continue;
                    }
                    let item = self.item(next);
                    if item.cold_marker {
                        continue;
                    }
                    let mut next_chain = chain.clone();
                    next_chain.push(item.qualified.clone());
                    chains.insert(key, next_chain);
                    seen.insert(key);
                    queue.push_back(next);
                }
            }
        }
        chains
            .into_iter()
            .map(|((file, item), chain)| HotFn {
                fn_ref: FnRef { file, item },
                chain,
            })
            .collect()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn parse_all(sources: &[&str]) -> Vec<ParsedFile> {
        sources.iter().map(|s| ParsedFile::parse(s)).collect()
    }

    #[test]
    fn reachability_follows_cross_file_chains() {
        let files = parse_all(&[
            "// abr-lint: hot-path\nfn root() { middle(); }\n",
            "fn middle() { leaf(); }\nfn leaf() {}\nfn unrelated() {}\n",
        ]);
        let graph = CrateGraph::build(&files);
        let hot = graph.hot_set();
        let names: Vec<&str> = hot
            .iter()
            .map(|h| graph.item(h.fn_ref).name.as_str())
            .collect();
        assert_eq!(names, ["root", "middle", "leaf"]);
        let leaf = hot
            .iter()
            .find(|h| h.chain.last().unwrap() == "leaf")
            .unwrap();
        assert_eq!(leaf.chain, ["root", "middle", "leaf"]);
    }

    #[test]
    fn cold_marker_cuts_propagation() {
        let files = parse_all(&[
            "// abr-lint: hot-path\nfn root() { logger(); }\n// abr-lint: cold\nfn logger() { alloc_heavy(); }\nfn alloc_heavy() {}\n",
        ]);
        let graph = CrateGraph::build(&files);
        let hot = graph.hot_set();
        let names: Vec<&str> = hot
            .iter()
            .map(|h| graph.item(h.fn_ref).name.as_str())
            .collect();
        assert_eq!(names, ["root"], "cold function and its callees stay out");
    }

    #[test]
    fn method_calls_resolve_by_name_conservatively() {
        let files = parse_all(&[
            "struct A; impl A {\n// abr-lint: hot-path\nfn go(&self) { self.step() } }\n",
            "struct B; impl B { fn step(&self) {} }\n",
        ]);
        let graph = CrateGraph::build(&files);
        let hot = graph.hot_set();
        let quals: Vec<&str> = hot
            .iter()
            .map(|h| graph.item(h.fn_ref).qualified.as_str())
            .collect();
        // B::step is pulled in even though the receiver is an A — the
        // over-approximation the module docs promise.
        assert_eq!(quals, ["A::go", "B::step"]);
    }

    #[test]
    fn qualified_path_calls_resolve_precisely() {
        let files = parse_all(&[
            "struct Cur; impl Cur { fn new() -> Cur { Cur } }\nstruct Conn; impl Conn { fn new() -> Conn { Conn } }\n// abr-lint: hot-path\nfn decode() { Cur::new(); }\n",
        ]);
        let graph = CrateGraph::build(&files);
        let quals: Vec<&str> = graph
            .hot_set()
            .iter()
            .map(|h| graph.item(h.fn_ref).qualified.as_str())
            .collect();
        // `Cur::new(` must NOT pull in the same-named `Conn::new`.
        assert_eq!(quals, ["Cur::new", "decode"]);
    }

    #[test]
    fn module_path_calls_fall_back_to_bare_name() {
        let files = parse_all(&[
            "// abr-lint: hot-path\nfn root() { util::helper(); }\n",
            "fn helper() {}\n",
        ]);
        let graph = CrateGraph::build(&files);
        // `util::helper` has no qualified match (free fn in another file),
        // so the bare-name fallback keeps the real edge.
        assert_eq!(graph.hot_set().len(), 2);
    }

    #[test]
    fn test_functions_never_enter_the_hot_set() {
        let files = parse_all(&[
            "// abr-lint: hot-path\nfn root() { helper(); }\n#[cfg(test)]\nmod t { fn helper() {} }\n",
        ]);
        let graph = CrateGraph::build(&files);
        assert_eq!(graph.hot_set().len(), 1);
    }
}
