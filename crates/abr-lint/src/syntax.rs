//! Lightweight Rust item parsing on top of the [`crate::scan`] code view:
//! function extents, enclosing `impl` blocks, call-site extraction, and the
//! `// abr-lint: hot-path` / `// abr-lint: cold` marker comments.
//!
//! This is *not* a Rust parser — it is the smallest amount of structure the
//! semantic rules (R7/R8) need, recovered from the stripped text where
//! comments and string contents are already blanked:
//!
//! * every `fn` item: its name, 1-based start/end lines, and the byte span
//!   of its body in the stripped text;
//! * the `impl` block (self type + optional trait) each function sits in,
//!   so diagnostics can say `SessionStore::decide` instead of `decide`;
//! * the identifiers that appear in call position inside each body
//!   (`foo(..)`, `x.foo(..)`, `Path::foo(..)`), which is what the
//!   conservative call-graph approximation in [`crate::graph`] consumes;
//! * marker comments read from the **raw** lines immediately above the
//!   `fn` (markers are comments, so the code view cannot see them):
//!   `// abr-lint: hot-path` declares a hot-path root,
//!   `// abr-lint: cold` cuts the function out of hot-path reachability
//!   (for opt-in diagnostic paths a hot function calls by name).
//!
//! The parser is intentionally conservative: a construct it does not
//! understand yields *more* reachability (extra call edges, wider spans),
//! never less, so rule R7 over-reports rather than under-reports and the
//! allowlist absorbs the difference.

use crate::scan::strip;

/// Words that look like calls (`if (x)`) or constructors (`Some(x)`) but
/// never name a function defined in this workspace.
const NON_CALL_WORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "let", "else", "move", "in", "as",
    "ref", "mut", "pub", "use", "where", "impl", "dyn", "box", "Some", "None", "Ok", "Err",
];

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name (`decide`).
    pub name: String,
    /// Qualified name for diagnostics (`SessionStore::decide` inside an
    /// impl block, else the bare name).
    pub qualified: String,
    /// 1-based line of the `fn` keyword.
    pub start_line: usize,
    /// 1-based line of the body's closing brace.
    pub end_line: usize,
    /// Byte range of the body (including both braces) in the stripped text.
    pub body: (usize, usize),
    /// Whether the function sits inside a `#[cfg(test)]` region.
    pub is_test: bool,
    /// `// abr-lint: hot-path` appeared immediately above (or on) the
    /// `fn` line: this function roots hot-path reachability (rule R7).
    pub hot_marker: bool,
    /// `// abr-lint: cold` appeared immediately above (or on) the `fn`
    /// line: reachability does not propagate into this function.
    pub cold_marker: bool,
    /// Identifiers in call position inside the body, deduplicated,
    /// lexicographic.
    pub calls: Vec<String>,
}

/// A file parsed into items, retaining the stripped text the spans index.
#[derive(Debug, Clone)]
pub struct ParsedFile {
    /// The stripped code view ([`crate::scan::strip`]) the spans index.
    pub stripped: String,
    /// Every `fn` item found, in source order.
    pub fns: Vec<FnItem>,
    /// Byte offset of the first character of each line in `stripped`.
    line_starts: Vec<usize>,
}

impl ParsedFile {
    /// Parse `source` (raw text; stripping happens internally).
    pub fn parse(source: &str) -> ParsedFile {
        let stripped = strip(source);
        let line_starts = line_starts(&stripped);
        let raw_lines: Vec<&str> = source.lines().collect();
        let test_mask = test_mask(&stripped);
        let impls = impl_spans(&stripped);
        let mut fns = Vec::new();
        for at in word_occurrences(&stripped, "fn") {
            let Some(item) = parse_fn(&stripped, at, &line_starts, &raw_lines, &test_mask, &impls)
            else {
                continue;
            };
            fns.push(item);
        }
        ParsedFile {
            stripped,
            fns,
            line_starts,
        }
    }

    /// 1-based line number of byte `offset` in the stripped text.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(idx) => idx + 1,
            Err(idx) => idx.max(1),
        }
    }
}

fn line_starts(text: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte offsets of word-boundary occurrences of `word` in `text`.
fn word_occurrences(text: &str, word: &str) -> Vec<usize> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = text[from..].find(word) {
        let at = from + pos;
        let end = at + word.len();
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + word.len();
    }
    out
}

/// Per-line `#[cfg(test)]` mask, same algorithm as the scanner's.
fn test_mask(stripped: &str) -> Vec<bool> {
    let n_lines = stripped.lines().count();
    let mut mask = vec![false; n_lines.max(1)];
    let bytes = stripped.as_bytes();
    let mut line_of = Vec::with_capacity(bytes.len());
    let mut line = 0usize;
    for &b in bytes {
        line_of.push(line);
        if b == b'\n' {
            line += 1;
        }
    }
    let needle = "#[cfg(test)]";
    let mut search_from = 0usize;
    while let Some(pos) = stripped[search_from..].find(needle) {
        let start = search_from + pos + needle.len();
        let Some(open_rel) = stripped[start..].find('{') else {
            break;
        };
        let open = start + open_rel;
        let close = matching_brace(bytes, open).unwrap_or(bytes.len().saturating_sub(1));
        let first = line_of.get(start - needle.len()).copied().unwrap_or(0);
        let last = line_of
            .get(close)
            .copied()
            .unwrap_or(n_lines.saturating_sub(1));
        for m in mask.iter_mut().take(last + 1).skip(first) {
            *m = true;
        }
        search_from = close.max(start);
    }
    mask
}

/// Byte offset of the `}` matching the `{` at `open`, or `None` if the
/// text ends first.
fn matching_brace(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (k, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// `(self_type, trait_name, body_span)` for every `impl` block.
fn impl_spans(stripped: &str) -> Vec<(String, Option<String>, (usize, usize))> {
    let bytes = stripped.as_bytes();
    let mut out = Vec::new();
    for at in word_occurrences(stripped, "impl") {
        let Some(open_rel) = stripped[at..].find('{') else {
            continue;
        };
        let open = at + open_rel;
        // `impl` headers never contain `{` or `;`; a `;` first means this
        // was something else (e.g. a type alias mentioning impl Trait).
        if stripped[at..open].contains(';') {
            continue;
        }
        let Some(close) = matching_brace(bytes, open) else {
            continue;
        };
        let header = &stripped[at + "impl".len()..open];
        let header = strip_generics(header);
        let (trait_name, self_type) = match header.split_once(" for ") {
            Some((t, s)) => (Some(last_segment(t)), last_segment(s)),
            None => (None, last_segment(&header)),
        };
        out.push((self_type, trait_name, (open, close)));
    }
    out
}

/// Drop `<...>` generic argument lists (depth-tracked) from a type path.
fn strip_generics(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut depth = 0i64;
    for c in s.chars() {
        match c {
            '<' => depth += 1,
            '>' => depth = (depth - 1).max(0),
            _ if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out.trim().to_string()
}

/// Final path segment of a (possibly `::`-qualified) type name.
fn last_segment(s: &str) -> String {
    s.trim()
        .rsplit("::")
        .next()
        .unwrap_or("")
        .trim()
        .trim_start_matches('&')
        .trim()
        .to_string()
}

#[allow(clippy::too_many_arguments)]
fn parse_fn(
    stripped: &str,
    fn_at: usize,
    line_starts: &[usize],
    raw_lines: &[&str],
    test_mask: &[bool],
    impls: &[(String, Option<String>, (usize, usize))],
) -> Option<FnItem> {
    let bytes = stripped.as_bytes();
    // Name: the next identifier after `fn`.
    let after = &stripped[fn_at + 2..];
    let name_rel = after.find(|c: char| c.is_ascii_alphabetic() || c == '_')?;
    // Only whitespace may sit between `fn` and its name.
    if !after[..name_rel].trim().is_empty() {
        return None;
    }
    let name_start = fn_at + 2 + name_rel;
    let name_end = stripped[name_start..]
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .map(|i| name_start + i)
        .unwrap_or(stripped.len());
    let name = stripped[name_start..name_end].to_string();
    // Body: the first `{` after the signature — unless a `;` at signature
    // level arrives first (trait method declaration, extern fn).
    let mut i = name_end;
    let mut angle = 0i64;
    let mut paren = 0i64;
    let open = loop {
        let b = *bytes.get(i)?;
        match b {
            b'<' => angle += 1,
            b'>' => angle = (angle - 1).max(0), // `->` also lands here; harmless
            b'(' => paren += 1,
            b')' => paren -= 1,
            b';' if paren == 0 && angle == 0 => return None,
            b'{' if paren == 0 => break i,
            _ => {}
        }
        i += 1;
    };
    let close = matching_brace(bytes, open).unwrap_or(bytes.len() - 1);
    let line_of = |off: usize| match line_starts.binary_search(&off) {
        Ok(idx) => idx + 1,
        Err(idx) => idx.max(1),
    };
    let start_line = line_of(fn_at);
    let end_line = line_of(close);
    let is_test = test_mask.get(start_line - 1).copied().unwrap_or(false);
    let (hot_marker, cold_marker) = markers_for(raw_lines, start_line);
    let qualified = impls
        .iter()
        .find(|(_, _, (a, b))| fn_at > *a && fn_at < *b)
        .map(|(self_type, _, _)| format!("{self_type}::{name}"))
        .unwrap_or_else(|| name.clone());
    let calls = extract_calls(&stripped[open..=close]);
    Some(FnItem {
        name,
        qualified,
        start_line,
        end_line,
        body: (open, close),
        is_test,
        hot_marker,
        cold_marker,
        calls,
    })
}

/// Look for marker comments in the run of comment/attribute lines directly
/// above the `fn` line. A marker only counts as a *standalone* plain
/// comment whose trimmed text starts with `// abr-lint:` — doc-comment
/// prose that merely mentions the marker syntax (like this paragraph)
/// never creates a root.
fn markers_for(raw_lines: &[&str], start_line: usize) -> (bool, bool) {
    let mut hot = false;
    let mut cold = false;
    let mut check = |line: &str| {
        if let Some(directive) = line.strip_prefix("// abr-lint:") {
            let directive = directive.trim();
            if directive.starts_with("hot-path") {
                hot = true;
            }
            if directive.starts_with("cold") {
                cold = true;
            }
        }
    };
    let mut idx = start_line - 1; // 0-based index of the fn line
    while idx > 0 {
        idx -= 1;
        let line = raw_lines[idx].trim();
        if line.starts_with("//") || line.starts_with("#[") || line.starts_with("#!") {
            check(line);
        } else {
            break;
        }
    }
    (hot, cold)
}

/// Identifiers in call position inside `body` (stripped text): `name(`,
/// `.name(`, `Path::name(`, and `name!(`. For path calls the last *two*
/// segments are kept (`Cur::new(` → `"Cur::new"`) so the call graph can
/// resolve them against qualified function names before falling back to
/// the bare-name over-approximation; a `Self::` prefix is dropped (it
/// resolves like a bare name). Deduplicated, sorted.
fn extract_calls(body: &str) -> Vec<String> {
    let bytes = body.as_bytes();
    let mut out: Vec<String> = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if !is_ident_byte(bytes[i]) || bytes[i].is_ascii_digit() {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && is_ident_byte(bytes[i]) {
            i += 1;
        }
        let ident = &body[start..i];
        // Skip whitespace and at most one `!` (macro) before the paren.
        let mut j = i;
        while j < bytes.len() && (bytes[j] == b' ' || bytes[j] == b'\n') {
            j += 1;
        }
        if j < bytes.len() && bytes[j] == b'!' {
            j += 1;
        }
        if j < bytes.len() && bytes[j] == b'(' && !NON_CALL_WORDS.contains(&ident) {
            let key = match path_prefix(body, start) {
                Some(prefix) if prefix != "Self" => format!("{prefix}::{ident}"),
                _ => ident.to_string(),
            };
            if let Err(pos) = out.binary_search(&key) {
                out.insert(pos, key);
            }
        }
    }
    out
}

/// If the identifier starting at `start` is preceded by `::`, the path
/// segment before it (`Cur::new` → `Some("Cur")`).
fn path_prefix(body: &str, start: usize) -> Option<&str> {
    let head = body.get(..start)?;
    let head = head.strip_suffix("::")?;
    let seg_start = head
        .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .map(|i| i + 1)
        .unwrap_or(0);
    let seg = &head[seg_start..];
    (!seg.is_empty() && !seg.starts_with(|c: char| c.is_ascii_digit())).then_some(seg)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    const SRC: &str = r#"
struct Store;

impl Store {
    // abr-lint: hot-path
    fn decide(&self, x: usize) -> usize {
        self.helper(x)
    }

    fn helper(&self, x: usize) -> usize {
        other(x) + 1
    }
}

// abr-lint: cold
fn other(x: usize) -> usize { x }

trait T {
    fn declared_only(&self);
}

#[cfg(test)]
mod tests {
    fn in_tests() { decide(); }
}
"#;

    #[test]
    fn finds_functions_and_extents() {
        let p = ParsedFile::parse(SRC);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["decide", "helper", "other", "in_tests"]);
        let decide = &p.fns[0];
        assert_eq!(decide.qualified, "Store::decide");
        assert!(decide.start_line < decide.end_line);
        assert!(p.stripped[decide.body.0..=decide.body.1].contains("helper"));
    }

    #[test]
    fn markers_are_read_from_raw_comments() {
        let p = ParsedFile::parse(SRC);
        assert!(p.fns[0].hot_marker);
        assert!(!p.fns[0].cold_marker);
        assert!(!p.fns[1].hot_marker);
        assert!(p.fns[2].cold_marker);
    }

    #[test]
    fn trait_declarations_without_body_are_skipped() {
        let p = ParsedFile::parse(SRC);
        assert!(p.fns.iter().all(|f| f.name != "declared_only"));
    }

    #[test]
    fn test_region_functions_are_marked() {
        let p = ParsedFile::parse(SRC);
        let t = p.fns.iter().find(|f| f.name == "in_tests").unwrap();
        assert!(t.is_test);
        assert!(!p.fns[0].is_test);
    }

    #[test]
    fn calls_cover_method_and_free_forms() {
        let p = ParsedFile::parse(SRC);
        assert_eq!(p.fns[0].calls, ["helper"]);
        assert_eq!(p.fns[1].calls, ["other"]);
    }

    #[test]
    fn impl_trait_for_type_qualifies_by_self_type() {
        let src = "impl AbrAlgorithm for Rba<'_> {\n    fn choose_level(&mut self) -> usize { pick() }\n}\n";
        let p = ParsedFile::parse(src);
        assert_eq!(p.fns[0].qualified, "Rba::choose_level");
    }

    #[test]
    fn marker_on_attribute_run_is_found() {
        let src = "// abr-lint: hot-path\n#[inline]\nfn fast() -> usize { 1 }\n";
        let p = ParsedFile::parse(src);
        assert!(p.fns[0].hot_marker, "marker above an attribute run");
    }

    #[test]
    fn doc_comment_prose_mentioning_the_marker_is_not_a_marker() {
        let src = "/// Roots are declared with `// abr-lint: hot-path` comments.\nfn document_markers() -> usize { 1 }\n";
        let p = ParsedFile::parse(src);
        assert!(!p.fns[0].hot_marker, "doc prose must not create a root");
        // A marker with a trailing explanation still counts.
        let src = "// abr-lint: cold — diagnostics only\nfn slow() -> usize { 1 }\n";
        let p = ParsedFile::parse(src);
        assert!(p.fns[0].cold_marker);
    }

    #[test]
    fn generic_fn_with_where_clause_parses() {
        let src = "fn f<T: Ord>(x: T) -> T\nwhere\n    T: Clone,\n{\n    helper(x)\n}\n";
        let p = ParsedFile::parse(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].calls, ["helper"]);
    }
}
