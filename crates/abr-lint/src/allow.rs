//! The catalogued allowlist: `abr-lint.allow` at the workspace root.
//!
//! Every exemption from a lint rule must be written down, scoped as
//! narrowly as possible, and justified. One entry per line:
//!
//! ```text
//! R5 crates/net-trace/src/io.rs expect("non-empty") -- max() of a vec checked non-empty above
//! ```
//!
//! * field 1 — the rule id (any id in [`crate::rules::RULES`]);
//! * field 2 — the workspace-relative path the exemption applies to;
//! * field 3 (optional) — a snippet that must appear on the violating line,
//!   so the exemption does not silently cover future, unrelated violations
//!   in the same file;
//! * after ` -- ` — the mandatory justification.
//!
//! Blank lines and `#` comments are ignored. Entries without a
//! justification are themselves reported as violations of the allowlist
//! format (rule `A0`), so exemptions can never be silent.

use std::fmt;

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id this entry exempts (validated against the rule registry).
    pub rule: String,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// Line snippet the violating line must contain; empty = whole file.
    pub snippet: String,
    /// The human justification after ` -- `.
    pub justification: String,
    /// Line number in the allowlist file (for diagnostics).
    pub line: usize,
}

impl fmt::Display for AllowEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.snippet.is_empty() {
            write!(f, "{} {}", self.rule, self.path)
        } else {
            write!(f, "{} {} {}", self.rule, self.path, self.snippet)
        }
    }
}

/// A parse problem in the allowlist file itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowFormatError {
    /// Line number in the allowlist file.
    pub line: usize,
    /// What is wrong.
    pub message: String,
}

/// Parse the allowlist text. Returns the entries and any format errors
/// (missing justification, malformed fields).
pub fn parse(text: &str) -> (Vec<AllowEntry>, Vec<AllowFormatError>) {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (spec, justification) = match line.split_once(" -- ") {
            Some((spec, j)) if !j.trim().is_empty() => (spec.trim(), j.trim().to_string()),
            _ => {
                errors.push(AllowFormatError {
                    line: line_no,
                    message: "allowlist entry needs a ` -- <justification>` suffix".to_string(),
                });
                continue;
            }
        };
        let mut fields = spec.splitn(3, char::is_whitespace);
        let rule = fields.next().unwrap_or("").to_string();
        let path = fields.next().unwrap_or("").trim().to_string();
        let snippet = fields.next().unwrap_or("").trim().to_string();
        if path.is_empty() {
            errors.push(AllowFormatError {
                line: line_no,
                message: format!("malformed entry `{spec}`: want `R<n> <path> [snippet]`"),
            });
            continue;
        }
        // Rule ids come from the registry — adding a rule there is the
        // only change needed for the allowlist to accept it.
        if crate::rules::rule_by_id(&rule).is_none() {
            let known: Vec<&str> = crate::rules::RULES.iter().map(|r| r.id).collect();
            errors.push(AllowFormatError {
                line: line_no,
                message: format!("unknown rule id `{rule}` (known: {})", known.join(", ")),
            });
            continue;
        }
        entries.push(AllowEntry {
            rule,
            path,
            snippet,
            justification,
            line: line_no,
        });
    }
    (entries, errors)
}

impl AllowEntry {
    /// Whether this entry exempts a violation of `rule` at `path` whose raw
    /// line text is `line`.
    pub fn covers(&self, rule: &str, path: &str, line: &str) -> bool {
        self.rule == rule
            && self.path == path
            && (self.snippet.is_empty() || line.contains(&self.snippet))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_requires_justification() {
        let text = "\
# comment
R5 crates/x/src/a.rs expect(\"ok\") -- provably infallible

R1 crates/bench/src/journal.rs -- wall-clock confined here
R3 crates/y/src/b.rs
";
        let (entries, errors) = parse(text);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].rule, "R5");
        assert_eq!(entries[0].snippet, "expect(\"ok\")");
        assert_eq!(entries[1].snippet, "");
        assert_eq!(errors.len(), 1, "missing justification is an error");
        assert_eq!(errors[0].line, 5);
    }

    #[test]
    fn rule_ids_come_from_the_registry() {
        // Three-character ids like R10 are valid because the registry says
        // so — no parser edit was needed to add them.
        let (entries, errors) = parse("R10 docs/REPLAY.md -- spec row pending\n");
        assert_eq!(entries.len(), 1);
        assert!(errors.is_empty(), "{errors:?}");
        let (entries, errors) = parse("R11 crates/x/src/a.rs -- no such rule\n");
        assert!(entries.is_empty());
        assert_eq!(errors.len(), 1);
        assert!(errors[0].message.contains("unknown rule id `R11`"));
        let (_, errors) = parse("X1 crates/x/src/a.rs -- bogus\n");
        assert_eq!(errors.len(), 1);
    }

    #[test]
    fn covers_matches_rule_path_and_snippet() {
        let (entries, _) = parse("R5 crates/x/src/a.rs expect(\"ok\") -- fine\n");
        let e = &entries[0];
        assert!(e.covers("R5", "crates/x/src/a.rs", "foo.expect(\"ok\");"));
        assert!(!e.covers("R5", "crates/x/src/a.rs", "foo.unwrap();"));
        assert!(!e.covers("R5", "crates/x/src/b.rs", "foo.expect(\"ok\");"));
        assert!(!e.covers("R1", "crates/x/src/a.rs", "foo.expect(\"ok\");"));
    }
}
