//! Token/line-level Rust source scanning: comment and string-literal
//! stripping plus `#[cfg(test)]` region tracking.
//!
//! The linter has no parser dependency (shims-only build environment), so
//! rules operate on a *code view* of each line: the raw text with comment
//! bodies and string/char-literal contents blanked out (replaced by spaces,
//! delimiters kept). That is enough to make substring rules such as
//! "`Instant::now` appears" immune to doc comments, `//` prose, and format
//! strings, which is where most naive greps go wrong.
//!
//! Test code is exempt from most rules. A `#[cfg(test)]` attribute followed
//! by a brace-delimited item marks everything up to the matching closing
//! brace as a test region; files under `tests/`, `benches/`, or `examples/`
//! directories are excluded wholesale by the walker (see
//! [`crate::rules`]).

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct ScannedLine {
    /// The raw line, exactly as read (no trailing newline).
    pub raw: String,
    /// The code view: comments and literal contents blanked with spaces.
    pub code: String,
    /// Whether the line sits inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// A whole scanned file: the per-line code view plus test-region marks.
#[derive(Debug, Clone)]
pub struct ScannedFile {
    /// The scanned lines, in order. Line numbers are `index + 1`.
    pub lines: Vec<ScannedLine>,
}

impl ScannedFile {
    /// Scan `source` into its code view.
    pub fn parse(source: &str) -> ScannedFile {
        let stripped = strip(source);
        let test_mask = test_regions(&stripped);
        let raw_lines: Vec<&str> = source.lines().collect();
        let code_lines: Vec<&str> = stripped.lines().collect();
        let lines = raw_lines
            .iter()
            .enumerate()
            .map(|(i, raw)| ScannedLine {
                raw: (*raw).to_string(),
                code: code_lines.get(i).copied().unwrap_or("").to_string(),
                in_test: test_mask.get(i).copied().unwrap_or(false),
            })
            .collect();
        ScannedFile { lines }
    }
}

/// Lexer state for [`strip`].
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

/// Blank comment bodies and string/char-literal contents with spaces,
/// preserving newlines (so line numbers survive) and literal delimiters (so
/// tokens don't merge across a blanked region).
pub fn strip(source: &str) -> String {
    let chars: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut state = State::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    out.push_str("  ");
                    i += 2;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                }
                '"' => {
                    state = State::Str;
                    out.push('"');
                    i += 1;
                }
                'b' if next == Some('"') => {
                    // Plain byte string: treat like a normal string literal.
                    out.push(' ');
                    out.push('"');
                    state = State::Str;
                    i += 2;
                }
                'r' | 'b' => {
                    // Possible raw-string start: r", r#", br#"...
                    let (consumed, hashes) = raw_string_open(&chars, i);
                    if consumed > 0 {
                        for _ in 0..consumed {
                            out.push(' ');
                        }
                        out.pop();
                        out.push('"');
                        state = State::RawStr(hashes);
                        i += consumed;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
                '\'' => {
                    // Char literal vs lifetime. A char literal closes within
                    // a few characters; a lifetime never has a closing quote.
                    if let Some(len) = char_literal_len(&chars, i) {
                        out.push('\'');
                        for _ in 1..len - 1 {
                            out.push(' ');
                        }
                        out.push('\'');
                        i += len;
                    } else {
                        out.push('\'');
                        i += 1;
                    }
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // Preserve the newline of a `\`-continuation so line
                    // numbering stays aligned with the source.
                    out.push(' ');
                    out.push(if next == Some('\n') { '\n' } else { ' ' });
                    i += 2;
                } else if c == '"' {
                    state = State::Code;
                    out.push('"');
                    i += 1;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    out.push('"');
                    for _ in 0..hashes {
                        out.push(' ');
                    }
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
        }
    }
    out
}

/// If `chars[at..]` opens a raw (byte) string (`r"`, `r#"`, `br##"`, ...),
/// return `(consumed chars, hash count)`; else `(0, 0)`.
fn raw_string_open(chars: &[char], at: usize) -> (usize, u32) {
    let mut i = at;
    if chars.get(i) == Some(&'b') {
        i += 1;
    }
    if chars.get(i) != Some(&'r') {
        return (0, 0);
    }
    i += 1;
    let mut hashes = 0u32;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) == Some(&'"') {
        (i - at + 1, hashes)
    } else {
        (0, 0)
    }
}

/// Whether the `"` at `chars[at]` is followed by `hashes` `#`s, closing a
/// raw string.
fn closes_raw(chars: &[char], at: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(at + k) == Some(&'#'))
}

/// If `chars[at]` (a `'`) starts a char literal, return its total length in
/// chars (including both quotes); `None` for lifetimes.
fn char_literal_len(chars: &[char], at: usize) -> Option<usize> {
    match chars.get(at + 1)? {
        '\\' => {
            // Escaped char: scan to the closing quote (bounded; covers
            // \n, \x7f, \u{10FFFF}).
            for len in 3..=12 {
                if chars.get(at + len - 1) == Some(&'\'') {
                    return Some(len);
                }
            }
            None
        }
        _ => {
            if chars.get(at + 2) == Some(&'\'') {
                Some(3)
            } else {
                None
            }
        }
    }
}

/// Per-line test mask: `true` for lines inside a `#[cfg(test)]` item.
///
/// Works on the stripped text: find each `#[cfg(test)]`, then mark from the
/// next `{` to its matching `}` (attributes between the cfg and the item,
/// like `#[allow(...)]`, are skipped over).
fn test_regions(stripped: &str) -> Vec<bool> {
    let n_lines = stripped.lines().count();
    let mut mask = vec![false; n_lines];
    let bytes = stripped.as_bytes();
    let mut line_of = Vec::with_capacity(bytes.len());
    let mut line = 0usize;
    for &b in bytes {
        line_of.push(line);
        if b == b'\n' {
            line += 1;
        }
    }
    let needle = "#[cfg(test)]";
    let mut search_from = 0usize;
    while let Some(pos) = stripped[search_from..].find(needle) {
        let start = search_from + pos + needle.len();
        // Find the opening brace of the annotated item.
        let Some(open_rel) = stripped[start..].find('{') else {
            break;
        };
        let open = start + open_rel;
        let mut depth = 0i64;
        let mut close = None;
        for (k, &b) in bytes.iter().enumerate().skip(open) {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(k);
                        break;
                    }
                }
                _ => {}
            }
        }
        let close = close.unwrap_or(bytes.len() - 1);
        let first = line_of.get(start - needle.len()).copied().unwrap_or(0);
        let last = line_of.get(close).copied().unwrap_or(n_lines - 1);
        for m in mask.iter_mut().take(last + 1).skip(first) {
            *m = true;
        }
        search_from = close;
    }
    mask
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let src = "let x = 1; // Instant::now\n/* HashMap */ let y = 2;\n";
        let out = strip(src);
        assert!(!out.contains("Instant::now"));
        assert!(!out.contains("HashMap"));
        assert!(out.contains("let x = 1;"));
        assert!(out.contains("let y = 2;"));
        assert_eq!(out.lines().count(), src.lines().count());
    }

    #[test]
    fn strips_string_contents_but_keeps_delimiters() {
        let src = r#"let s = "thread_rng inside a string"; s.unwrap();"#;
        let out = strip(src);
        assert!(!out.contains("thread_rng"));
        assert!(out.contains(".unwrap()"));
        assert!(out.contains('"'));
    }

    #[test]
    fn strips_raw_strings_and_char_literals() {
        let src = "let s = r#\"OsRng\"#; let c = 'x'; let l: &'static str = \"\";";
        let out = strip(src);
        assert!(!out.contains("OsRng"));
        assert!(out.contains("'static"), "lifetime survives: {out}");
    }

    #[test]
    fn backslash_continuation_keeps_line_numbering() {
        // A `\` before the newline inside a string must not swallow the
        // newline, or every later violation would report a shifted line.
        let src = "let s = \"one \\\n   two\";\nx.unwrap();\n";
        let out = strip(src);
        assert_eq!(out.lines().count(), src.lines().count());
        assert_eq!(out.lines().nth(2), Some("x.unwrap();"));
    }

    #[test]
    fn doc_comments_are_comments() {
        let src = "/// let ed = Dataset::by_name(\"x\").unwrap();\nfn f() {}\n";
        let out = strip(src);
        assert!(!out.contains("unwrap"));
    }

    #[test]
    fn marks_cfg_test_regions() {
        let src = "fn prod() { a.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { b.unwrap(); }\n}\nfn prod2() {}\n";
        let f = ScannedFile::parse(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ let z = 3;";
        let out = strip(src);
        assert!(out.contains("let z = 3;"));
        assert!(!out.contains("inner"));
    }
}
