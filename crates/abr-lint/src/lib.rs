#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
//! # abr-lint — workspace determinism/correctness linter
//!
//! A dependency-free static-analysis pass over the CAVA workspace enforcing
//! the repo-specific rules that keep every simulated session bit-reproducible
//! across thread counts, seeds, and machines (the property the paper's
//! Tables 3–5 and Figs. 8–14 rest on):
//!
//! * **R1** — no wall-clock (`Instant::now`/`SystemTime::now`) in
//!   sim/algorithm crates; simulated time flows from the simulator clock.
//! * **R2** — no `HashMap`/`HashSet` in output-producing crates (`bench`,
//!   `sim-report`); iteration order must be byte-stable.
//! * **R3** — no OS entropy (`thread_rng`/`from_entropy`/`OsRng`); all RNG
//!   is seeded through the dataset/trace seed plumbing.
//! * **R4** — no exact float comparisons in ABR decision logic.
//! * **R5** — no `.unwrap()`/`.expect(` in library crates outside tests;
//!   provably-infallible cases are catalogued in the allowlist.
//! * **R6** — `#![forbid(unsafe_code)]` in every crate root.
//!
//! Run it with `cargo run -p abr-lint` from anywhere in the workspace; see
//! `CONTRIBUTING.md` ("Determinism rules") for the allowlist format. The
//! scanner is token/line-level ([`scan`]) — comments and string contents
//! are stripped before matching, and `#[cfg(test)]` regions are exempt.

pub mod allow;
pub mod rules;
pub mod scan;

pub use rules::{check_crate_root, check_file, lint_workspace, LintReport, Violation};

use std::path::{Path, PathBuf};

/// Locate the workspace root: ascend from `start` until a directory whose
/// `Cargo.toml` contains a `[workspace]` table is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
