#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
//! # abr-lint — workspace determinism/correctness linter
//!
//! A dependency-free static-analysis pass over the CAVA workspace enforcing
//! the repo-specific rules that keep every simulated session bit-reproducible
//! across thread counts, seeds, and machines (the property the paper's
//! Tables 3–5 and Figs. 8–14 rest on):
//!
//! * **R1** — no wall-clock (`Instant::now`/`SystemTime::now`) in
//!   sim/algorithm crates; simulated time flows from the simulator clock.
//! * **R2** — no `HashMap`/`HashSet` in output-producing crates (`bench`,
//!   `sim-report`); iteration order must be byte-stable.
//! * **R3** — no OS entropy (`thread_rng`/`from_entropy`/`OsRng`); all RNG
//!   is seeded through the dataset/trace seed plumbing.
//! * **R4** — no exact float comparisons in ABR decision logic.
//! * **R5** — no `.unwrap()`/`.expect(` in library crates outside tests;
//!   provably-infallible cases are catalogued in the allowlist.
//! * **R6** — `#![forbid(unsafe_code)]` in every crate root.
//! * **R7** — no heap allocation (`Vec::new`, `vec![`, `Box::new`,
//!   `format!`, `.to_vec(`, `.collect(`, `String::from`) in any function
//!   reachable from a `// abr-lint: hot-path` root — the enforcement arm
//!   of the zero-allocation decision hot path (ROADMAP item 5).
//! * **R8** — no `lock()`/`try_lock()` guard whose lexical scope contains
//!   socket/stream I/O or `thread::sleep`.
//! * **R9** — no narrowing `as` cast in the wire encode/decode paths
//!   (`protocol.rs`, `replay.rs`) without an adjacent bounds guard.
//! * **R10** — the record-type table in `docs/REPLAY.md` must match the
//!   constants, `Event` variants, and match arms in `replay.rs` — drift in
//!   either direction fails the lint.
//!
//! R1–R6 are token/line-level over the [`scan`] code view (comments and
//! string contents stripped, `#[cfg(test)]` regions exempt). R7–R10 are
//! the semantic tier: [`syntax`] recovers function extents, `impl` blocks,
//! and hot/cold markers; [`graph`] builds a conservative intra-crate
//! call-graph whose hot set R7 scans; R10 cross-checks two artifacts.
//!
//! Run it with `cargo run -p abr-lint` (add `-- --format json` for the
//! machine-readable report CI consumes); see `CONTRIBUTING.md`
//! ("Determinism rules") for the allowlist format and hot-path markers.

pub mod allow;
pub mod graph;
pub mod rules;
pub mod scan;
pub mod syntax;

pub use rules::{
    check_crate_hot_paths, check_crate_root, check_file, check_spec_drift, lint_workspace,
    rule_by_id, LintReport, RuleInfo, Violation, RULES,
};

use std::path::{Path, PathBuf};

/// Locate the workspace root: ascend from `start` until a directory whose
/// `Cargo.toml` contains a `[workspace]` table is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
