//! The determinism/correctness rules (R1–R10) and the workspace walker.
//!
//! | rule | scope | what it forbids |
//! |------|-------|-----------------|
//! | R1 | sim/algorithm crates + `bench` | `Instant::now`/`SystemTime::now` — wall-clock reads; simulated time must flow from the simulator's clock |
//! | R2 | `bench`, `sim-report`, `abr-serve` | `HashMap`/`HashSet` — iteration order nondeterminism feeding journals/reports/CSVs; use `BTreeMap`/`BTreeSet` |
//! | R3 | all crates | `thread_rng`/`from_entropy`/`OsRng`/`rand::random` — OS entropy; all RNG must be seeded through the dataset/trace seed plumbing |
//! | R4 | algorithm crates | `==`/`!=` against float literals in decision logic — exact float comparison is platform/ordering bait |
//! | R5 | library crates | `.unwrap()`/`.expect(` outside tests — I/O and parse failures must propagate; provably-infallible cases go in the allowlist |
//! | R6 | every crate root | missing `#![forbid(unsafe_code)]` |
//! | R7 | functions reachable from `// abr-lint: hot-path` roots | heap allocation (`Vec::new`, `vec![`, `Box::new`, `format!`, `.to_vec(`, `.collect(`, `String::from`) on the decision hot path |
//! | R8 | all crates | a `lock()`/`try_lock()` guard whose lexical scope contains socket/stream I/O (`read`/`write`/`flush`) or `thread::sleep` |
//! | R9 | `abr-serve` protocol/replay encode paths | narrowing `as` casts (`as u8/u16/u32/usize`) with no adjacent bounds guard |
//! | R10 | `docs/REPLAY.md` × `replay.rs` | drift between the spec's record-type table and the constants/variants/match arms in the decoder |
//!
//! R1–R5 and R8–R9 are line/file-level and run in [`check_file`]; R6 runs
//! on crate roots ([`check_crate_root`]); R7 is cross-file within each
//! crate ([`check_crate_hot_paths`], built on [`crate::syntax`] +
//! [`crate::graph`]); R10 is cross-artifact ([`check_spec_drift`]).
//!
//! Test code (`#[cfg(test)]` regions; `tests/`, `benches/`, `examples/`
//! trees) is exempt from the line rules. Exemptions in real code go through
//! the catalogued allowlist (see [`crate::allow`]).

use crate::allow::{self, AllowEntry, AllowFormatError};
use crate::graph::CrateGraph;
use crate::scan::ScannedFile;
use crate::syntax::ParsedFile;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------------
// Rule registry
// ---------------------------------------------------------------------------

/// One registered rule. The registry is the single source of truth for
/// valid rule ids: the allowlist parser, the JSON report, and the docs all
/// derive from it, so adding a rule here is the *only* id plumbing needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleInfo {
    /// Rule id (`"R1"`, `"R10"`, …).
    pub id: &'static str,
    /// One-line summary for reports and `--help`.
    pub summary: &'static str,
}

/// Every rule this linter knows, in id order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "R1",
        summary: "no wall-clock reads in sim/algorithm crates",
    },
    RuleInfo {
        id: "R2",
        summary: "no hash-ordered collections in output-producing crates",
    },
    RuleInfo {
        id: "R3",
        summary: "no OS entropy anywhere",
    },
    RuleInfo {
        id: "R4",
        summary: "no exact float comparison in decision logic",
    },
    RuleInfo {
        id: "R5",
        summary: "no unwrap/expect in library crates",
    },
    RuleInfo {
        id: "R6",
        summary: "crate roots must forbid(unsafe_code)",
    },
    RuleInfo {
        id: "R7",
        summary: "no heap allocation in hot-path-reachable functions",
    },
    RuleInfo {
        id: "R8",
        summary: "no lock guard held across blocking I/O or sleep",
    },
    RuleInfo {
        id: "R9",
        summary: "no unguarded narrowing casts in wire encode/decode paths",
    },
    RuleInfo {
        id: "R10",
        summary: "replay record-type table must match docs/REPLAY.md",
    },
];

/// Look a rule up by id.
pub fn rule_by_id(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

// ---------------------------------------------------------------------------
// Scopes
// ---------------------------------------------------------------------------

/// Crates whose code runs inside (or feeds) the simulation: wall-clock
/// reads here desynchronize results from the simulated clock (R1).
/// `bench` is included because its journal/progress timing must stay
/// confined to the one allowlisted module (`crates/bench/src/journal.rs`).
const SIM_CRATES: &[&str] = &[
    "core",
    "abr-sim",
    "abr-baselines",
    "abr-pop",
    "abr-serve",
    "vbr-video",
    "net-trace",
    "bench",
];

/// Crates that produce journal/report/CSV output (R2): iteration order must
/// be deterministic, so unordered hash collections are banned outright.
const OUTPUT_CRATES: &[&str] = &["bench", "sim-report", "abr-serve", "abr-pop"];

/// Crates holding ABR decision logic (R4). `abr-pop` is in scope: its
/// arrival-placement and lifecycle draws are decision logic in the same
/// sense — an exact float compare there silently skews the population.
const ALGO_CRATES: &[&str] = &["core", "abr-sim", "abr-baselines", "abr-serve", "abr-pop"];

/// Library crates (R5): panicking on I/O or parse results is banned; the
/// provably-infallible cases are catalogued in the allowlist.
const LIBRARY_CRATES: &[&str] = &[
    "core",
    "abr-sim",
    "abr-baselines",
    "abr-pop",
    "abr-serve",
    "vbr-video",
    "net-trace",
    "sim-report",
];

/// Files whose encode/decode paths rule R9 watches for unguarded
/// narrowing casts (the PR-4 `len as u32` bug class).
const R9_FILES: &[&str] = &[
    "crates/abr-serve/src/protocol.rs",
    "crates/abr-serve/src/replay.rs",
];

/// The spec/decoder pair rule R10 cross-checks.
const R10_DOC: &str = "docs/REPLAY.md";
const R10_DECODER: &str = "crates/abr-serve/src/replay.rs";

/// One rule violation at a specific line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (see [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line number (0 for file-level rules like R6).
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// The offending raw line (trimmed), for context.
    pub snippet: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}: {}: {}", self.path, self.rule, self.message)
        } else {
            write!(
                f,
                "{}:{}: {}: {}\n    {}",
                self.path, self.line, self.rule, self.message, self.snippet
            )
        }
    }
}

/// Which crate (directory name under `crates/`, or `"cava-suite"` for the
/// umbrella `src/`) a workspace-relative path belongs to.
fn crate_of(rel_path: &str) -> Option<&str> {
    if let Some(rest) = rel_path.strip_prefix("crates/") {
        rest.split('/').next()
    } else if rel_path.starts_with("src/") {
        Some("cava-suite")
    } else {
        None
    }
}

fn in_scope(rel_path: &str, crates: &[&str]) -> bool {
    crate_of(rel_path).is_some_and(|c| crates.contains(&c))
}

/// Byte offsets of every word-boundary occurrence of `ident` in `code`.
fn ident_occurrences(code: &str, ident: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(ident) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + ident.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + ident.len();
    }
    out
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Occurrences of `pat` in `code` where, when the pattern ends in an
/// identifier character, the next character is not one (so
/// `String::from` does not match `String::from_utf8`).
fn bounded_occurrences(code: &str, pat: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let tail_is_ident = pat.bytes().last().is_some_and(is_ident_byte);
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find(pat) {
        let at = from + pos;
        let end = at + pat.len();
        if !tail_is_ident || end >= bytes.len() || !is_ident_byte(bytes[end]) {
            out.push(at);
        }
        from = at + pat.len();
    }
    out
}

/// Whether `tok` is a floating-point literal (`0.0`, `1.5e3`, `2.`).
fn is_float_literal(tok: &str) -> bool {
    let tok = tok.strip_prefix('-').unwrap_or(tok);
    let mut chars = tok.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_digit()) && tok.contains('.')
}

/// The token (identifier/number/path chars) ending immediately before byte
/// `at` in `code`, skipping trailing whitespace.
fn token_before(code: &str, at: usize) -> &str {
    let head = code[..at].trim_end();
    let start = head
        .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '.'))
        .map(|i| i + 1)
        .unwrap_or(0);
    &head[start..]
}

/// The token starting immediately after byte `at` in `code`, skipping
/// leading whitespace (a leading `-` is kept so `-0.5` reads as a float).
fn token_after(code: &str, at: usize) -> &str {
    let tail = code[at..].trim_start();
    let mut end = 0;
    for (i, c) in tail.char_indices() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == '.' || (i == 0 && c == '-');
        if !ok {
            break;
        }
        end = i + c.len_utf8();
    }
    &tail[..end]
}

/// Apply the line/file-level rules R1–R5, R8, R9 to one file. `rel_path`
/// controls which rules are in scope; test code is skipped.
pub fn check_file(rel_path: &str, source: &str) -> Vec<Violation> {
    let scanned = ScannedFile::parse(source);
    let mut out = Vec::new();
    let r1 = in_scope(rel_path, SIM_CRATES);
    let r2 = in_scope(rel_path, OUTPUT_CRATES);
    let r3 = crate_of(rel_path).is_some();
    let r4 = in_scope(rel_path, ALGO_CRATES);
    let r5 = in_scope(rel_path, LIBRARY_CRATES);
    let r9 = R9_FILES.contains(&rel_path);
    for (idx, line) in scanned.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let n = idx + 1;
        let code = line.code.as_str();
        let mut push = |rule: &'static str, message: String| {
            out.push(Violation {
                rule,
                path: rel_path.to_string(),
                line: n,
                message,
                snippet: line.raw.trim().to_string(),
            });
        };
        if r1 {
            for pat in ["Instant::now", "SystemTime::now"] {
                if !ident_occurrences(code, pat.split("::").next().unwrap_or(pat)).is_empty()
                    && code.contains(pat)
                {
                    push(
                        "R1",
                        format!("wall-clock read `{pat}` — simulated time must come from the simulator clock"),
                    );
                }
            }
        }
        if r2 {
            for pat in ["HashMap", "HashSet"] {
                if !ident_occurrences(code, pat).is_empty() {
                    push(
                        "R2",
                        format!("unordered `{pat}` in an output-producing crate — use `BTreeMap`/`BTreeSet` so journal/report/CSV order is byte-stable"),
                    );
                }
            }
        }
        if r3 {
            for pat in ["thread_rng", "from_entropy", "OsRng"] {
                if !ident_occurrences(code, pat).is_empty() {
                    push(
                        "R3",
                        format!("OS entropy via `{pat}` — all randomness must be seeded through the dataset/trace seed plumbing"),
                    );
                }
            }
            if code.contains("rand::random") {
                push(
                    "R3",
                    "OS entropy via `rand::random` — all randomness must be seeded through the dataset/trace seed plumbing".to_string(),
                );
            }
        }
        if r4 {
            for op in ["==", "!="] {
                let mut from = 0;
                while let Some(pos) = code[from..].find(op) {
                    let at = from + pos;
                    from = at + op.len();
                    // Skip `<=`, `>=`, `=>`-adjacent forms: only bare
                    // `==`/`!=` between tokens qualify.
                    if at > 0 && matches!(&code[at - 1..at], "<" | ">" | "=" | "!") {
                        continue;
                    }
                    if code[at + op.len()..].starts_with('=') {
                        continue;
                    }
                    let lhs = token_before(code, at);
                    let rhs = token_after(code, at + op.len());
                    if is_float_literal(lhs) || is_float_literal(rhs) {
                        push(
                            "R4",
                            format!("exact float comparison `{lhs} {op} {rhs}` in ABR decision logic — compare against a tolerance instead"),
                        );
                    }
                }
            }
        }
        if r5 {
            for pat in [".unwrap()", ".expect("] {
                if code.contains(pat) {
                    push(
                        "R5",
                        format!("`{pat}` in library code — propagate the error; provably-infallible cases need an allowlist entry"),
                    );
                }
            }
        }
        if r9 {
            check_narrowing_casts(rel_path, &scanned, idx, &mut out);
        }
    }
    if crate_of(rel_path).is_some() {
        out.extend(check_lock_scopes(rel_path, source));
    }
    out
}

// ---------------------------------------------------------------------------
// R9 — narrowing casts in encode/decode paths
// ---------------------------------------------------------------------------

/// Narrowing target types a bare `as` cast may silently truncate into.
/// `usize` is included because it is 32-bit on some targets, so `u64 as
/// usize` is a narrowing cast there (the decode path's `Cur::usize` goes
/// through `try_from` for exactly this reason).
const NARROWING_TARGETS: &[&str] = &["u8", "u16", "u32", "usize", "i8", "i16", "i32"];

/// A cast is considered guarded when the same line or one of the four
/// code lines above it carries a bounds check: an explicit `try_from`,
/// an assertion, a `.min(...)` clamp, or a comparison against a `*MAX*`
/// bound.
const CAST_GUARDS: &[&str] = &["try_from", "assert", ".min(", "MAX", "clamp", "checked_"];

fn check_narrowing_casts(
    rel_path: &str,
    scanned: &ScannedFile,
    idx: usize,
    out: &mut Vec<Violation>,
) {
    let line = &scanned.lines[idx];
    let code = line.code.as_str();
    for at in ident_occurrences(code, "as") {
        let target = token_after(code, at + 2);
        if !NARROWING_TARGETS.contains(&target) {
            continue;
        }
        let guarded = (idx.saturating_sub(4)..=idx).any(|k| {
            let nearby = scanned.lines[k].code.as_str();
            CAST_GUARDS.iter().any(|g| nearby.contains(g))
        });
        if !guarded {
            out.push(Violation {
                rule: "R9",
                path: rel_path.to_string(),
                line: idx + 1,
                message: format!(
                    "narrowing cast `as {target}` in a wire encode/decode path with no adjacent bounds guard — use `try_from` (PR-4's `len as u32` bug class)"
                ),
                snippet: line.raw.trim().to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// R8 — lock guards held across blocking I/O
// ---------------------------------------------------------------------------

/// Blocking operations that must never run under a mutex guard: socket
/// and stream reads/writes/flushes, frame-level wire helpers, and sleeps.
const LOCKED_IO_PATTERNS: &[&str] = &[
    ".write_all(",
    ".write(",
    ".flush(",
    ".read(",
    ".read_exact(",
    ".read_to_end(",
    "write_frame(",
    "read_frame(",
    "read_frame_budgeted(",
    "read_frame_budgeted_traced(",
    "thread::sleep",
    "sleep(",
    ".accept(",
    // Reactor sweep helpers (crates/abr-serve/src/reactor.rs): each of
    // these performs socket reads/writes/flushes internally, so a guard
    // held across a call is a guard held across I/O even though no bare
    // `.read(`/`.write(` appears at the call site.
    ".pump(",
    ".fill(",
    ".drain_frames(",
];

/// R8: find `lock(`/`.lock()`/`.try_lock()` call sites whose guard's
/// lexical scope (from the call to the end of the enclosing block, or to
/// an explicit `drop(<binding>)`) contains a blocking I/O pattern. The
/// scope approximation is deliberately wide: a guard bound with `let`
/// lives to the end of its block, and we treat temporaries the same way,
/// so the rule over-reports and exemptions are catalogued, never silent.
fn check_lock_scopes(rel_path: &str, source: &str) -> Vec<Violation> {
    let parsed = ParsedFile::parse(source);
    let scanned = ScannedFile::parse(source);
    let stripped = parsed.stripped.as_str();
    let bytes = stripped.as_bytes();
    let mut out = Vec::new();
    let mut sites: Vec<usize> = Vec::new();
    for word in ["lock", "try_lock"] {
        for at in word_occurrences_local(stripped, word) {
            let after = stripped[at + word.len()..].trim_start();
            if after.starts_with('(') {
                sites.push(at);
            }
        }
    }
    sites.sort_unstable();
    sites.dedup();
    for at in sites {
        let line_no = parsed.line_of(at);
        let in_test = scanned
            .lines
            .get(line_no - 1)
            .map(|l| l.in_test)
            .unwrap_or(false);
        if in_test {
            continue;
        }
        // The guard's binding name, if the statement is a `let`.
        let stmt_start = stripped[..at]
            .rfind([';', '{', '}'])
            .map(|i| i + 1)
            .unwrap_or(0);
        let binding = binding_name(&stripped[stmt_start..at]);
        // Scope: to the end of the enclosing block, or an explicit drop.
        let mut depth = 0i64;
        let mut end = bytes.len();
        let mut k = at;
        while k < bytes.len() {
            match bytes[k] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth < 0 {
                        end = k;
                        break;
                    }
                }
                b'd' => {
                    if let Some(name) = &binding {
                        if stripped[k..].starts_with("drop(")
                            && (k == 0 || !is_ident_byte(bytes[k - 1]))
                            && stripped[k + 5..].trim_start().starts_with(name.as_str())
                        {
                            end = k;
                            break;
                        }
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let scope = &stripped[at..end];
        if let Some(pat) = LOCKED_IO_PATTERNS.iter().find(|p| scope.contains(**p)) {
            let io_at = at + scope.find(pat as &str).unwrap_or(0);
            let io_line = parsed.line_of(io_at);
            out.push(Violation {
                rule: "R8",
                path: rel_path.to_string(),
                line: line_no,
                message: format!(
                    "lock guard held across blocking `{pat}` (line {io_line}) — release the guard before I/O or sleep"
                ),
                snippet: scanned
                    .lines
                    .get(line_no - 1)
                    .map(|l| l.raw.trim().to_string())
                    .unwrap_or_default(),
            });
        }
    }
    out
}

/// Word-boundary occurrences (local twin of the line-level helper, over
/// the whole stripped text).
fn word_occurrences_local(text: &str, word: &str) -> Vec<usize> {
    ident_occurrences(text, word)
}

/// `let [mut] NAME = … lock(…)` → `Some(NAME)`.
fn binding_name(stmt_head: &str) -> Option<String> {
    let after_let = stmt_head.trim_start().strip_prefix("let ")?;
    let after_mut = after_let
        .trim_start()
        .strip_prefix("mut ")
        .unwrap_or(after_let.trim_start());
    let name: String = after_mut
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

// ---------------------------------------------------------------------------
// R7 — heap allocation on the decision hot path
// ---------------------------------------------------------------------------

/// Heap-allocating constructs forbidden in hot-path-reachable functions.
const ALLOC_PATTERNS: &[&str] = &[
    "Vec::new",
    "vec![",
    "Box::new",
    "format!",
    ".to_vec(",
    ".collect(",
    "String::from",
];

/// R7: cross-file, per-crate. `files` is every `(rel_path, source)` of one
/// crate; functions reachable (by the conservative name-resolved call
/// graph) from a `// abr-lint: hot-path` root must not heap-allocate.
/// Each violation's message carries the witness call chain from the root.
pub fn check_crate_hot_paths(files: &[(String, String)]) -> Vec<Violation> {
    let parsed: Vec<ParsedFile> = files
        .iter()
        .map(|(_, src)| ParsedFile::parse(src))
        .collect();
    let scanned: Vec<ScannedFile> = files
        .iter()
        .map(|(_, src)| ScannedFile::parse(src))
        .collect();
    let graph = CrateGraph::build(&parsed);
    let mut out = Vec::new();
    for hot in graph.hot_set() {
        let item = graph.item(hot.fn_ref);
        let file = &parsed[hot.fn_ref.file];
        let rel_path = files[hot.fn_ref.file].0.as_str();
        let first_line = file.line_of(item.body.0);
        let last_line = file.line_of(item.body.1);
        for n in first_line..=last_line {
            let Some(line) = scanned[hot.fn_ref.file].lines.get(n - 1) else {
                continue;
            };
            for pat in ALLOC_PATTERNS {
                if !bounded_occurrences(&line.code, pat).is_empty() {
                    let chain = hot.chain.join(" -> ");
                    out.push(Violation {
                        rule: "R7",
                        path: rel_path.to_string(),
                        line: n,
                        message: format!(
                            "heap allocation `{pat}` on the decision hot path (in `{}`, reachable via {chain})",
                            item.qualified
                        ),
                        snippet: line.raw.trim().to_string(),
                    });
                }
            }
        }
    }
    out.sort_by(|a, b| (a.path.as_str(), a.line).cmp(&(b.path.as_str(), b.line)));
    out
}

// ---------------------------------------------------------------------------
// R10 — spec drift between docs/REPLAY.md and the replay decoder
// ---------------------------------------------------------------------------

/// `EV_SESSION_OPENED` → `SessionOpened`.
fn camel_of_const(name: &str) -> String {
    let mut out = String::new();
    for part in name.split('_') {
        let mut chars = part.chars();
        if let Some(first) = chars.next() {
            out.push(first.to_ascii_uppercase());
            for c in chars {
                out.push(c.to_ascii_lowercase());
            }
        }
    }
    out
}

/// A record-type row parsed from the spec table or the decoder source.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RecordType {
    value: u8,
    name: String,
    line: usize,
    raw: String,
}

/// Rows of the `| Type | Name | … |` record-type table in the spec.
fn doc_record_rows(doc: &str) -> Vec<RecordType> {
    let mut out = Vec::new();
    for (idx, raw) in doc.lines().enumerate() {
        let line = raw.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        // `| 0x01 | RunMeta | ... |` splits into ["", "0x01", "RunMeta", …].
        if cells.len() < 3 {
            continue;
        }
        let Some(hex) = cells[1].strip_prefix("0x") else {
            continue;
        };
        let Ok(value) = u8::from_str_radix(hex, 16) else {
            continue;
        };
        let name = cells[2].to_string();
        if name.is_empty() {
            continue;
        }
        out.push(RecordType {
            value,
            name,
            line: idx + 1,
            raw: line.to_string(),
        });
    }
    out
}

/// `const EV_*: u8 = 0x..;` constants in the decoder source (code view,
/// so a constant pasted in a comment does not count).
fn decoder_record_consts(source: &str) -> Vec<(String, RecordType)> {
    let scanned = ScannedFile::parse(source);
    let mut out = Vec::new();
    for (idx, line) in scanned.lines.iter().enumerate() {
        let code = line.code.trim();
        let Some(rest) = code.strip_prefix("const EV_") else {
            continue;
        };
        let Some((name_part, tail)) = rest.split_once(':') else {
            continue;
        };
        if !tail.contains("u8") {
            continue;
        }
        let Some(eq) = tail.find("0x") else {
            continue;
        };
        let hex: String = tail[eq + 2..]
            .chars()
            .take_while(|c| c.is_ascii_hexdigit())
            .collect();
        let Ok(value) = u8::from_str_radix(&hex, 16) else {
            continue;
        };
        let const_name = format!("EV_{}", name_part.trim());
        out.push((
            const_name.clone(),
            RecordType {
                value,
                name: camel_of_const(name_part.trim()),
                line: idx + 1,
                raw: line.raw.trim().to_string(),
            },
        ));
    }
    out
}

/// Variant names of `enum Event { … }` in the decoder source.
fn event_variants(source: &str) -> Vec<String> {
    let scanned = ScannedFile::parse(source);
    let stripped: String = scanned
        .lines
        .iter()
        .map(|l| format!("{}\n", l.code))
        .collect();
    let Some(enum_at) = stripped.find("enum Event") else {
        return Vec::new();
    };
    let Some(open_rel) = stripped[enum_at..].find('{') else {
        return Vec::new();
    };
    let open = enum_at + open_rel;
    let bytes = stripped.as_bytes();
    let mut depth = 0i64;
    let mut variants = Vec::new();
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            b'A'..=b'Z' if depth == 1 => {
                let start = i;
                while i < bytes.len() && is_ident_byte(bytes[i]) {
                    i += 1;
                }
                let ident = stripped[start..i].to_string();
                let next = stripped[i..].trim_start().chars().next();
                if matches!(next, Some('{') | Some('(') | Some(',')) {
                    variants.push(ident);
                }
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    variants
}

/// R10: cross-check the spec's record-type table against the decoder's
/// constants, enum variants, and match arms — drift in either direction
/// is a violation.
pub fn check_spec_drift(
    doc_path: &str,
    doc: &str,
    decoder_path: &str,
    decoder: &str,
) -> Vec<Violation> {
    let rows = doc_record_rows(doc);
    let consts = decoder_record_consts(decoder);
    let variants = event_variants(decoder);
    let stripped_decoder: String = ScannedFile::parse(decoder)
        .lines
        .iter()
        .map(|l| format!("{}\n", l.code))
        .collect();
    let mut out = Vec::new();
    let mut push = |path: &str, line: usize, raw: &str, message: String| {
        out.push(Violation {
            rule: "R10",
            path: path.to_string(),
            line,
            message,
            snippet: raw.to_string(),
        });
    };

    if rows.is_empty() {
        push(
            doc_path,
            0,
            "",
            "no record-type table rows found — the spec's `| 0xNN | Name | … |` table is the normative record registry".to_string(),
        );
        return out;
    }

    // Spec → decoder.
    for row in &rows {
        match consts.iter().find(|(_, c)| c.value == row.value) {
            None => push(
                doc_path,
                row.line,
                &row.raw,
                format!(
                    "spec documents record type 0x{:02X} `{}` but {decoder_path} defines no constant with that value",
                    row.value, row.name
                ),
            ),
            Some((const_name, c)) if c.name != row.name => push(
                doc_path,
                row.line,
                &row.raw,
                format!(
                    "record type 0x{:02X} is `{}` in the spec but `{const_name}` (= {}) in {decoder_path}",
                    row.value, row.name, c.name
                ),
            ),
            Some(_) => {}
        }
    }

    // Decoder → spec, plus internal consistency of the decoder itself.
    for (const_name, c) in &consts {
        if !rows.iter().any(|row| row.value == c.value) {
            push(
                decoder_path,
                c.line,
                &c.raw,
                format!(
                    "record type 0x{:02X} `{const_name}` has no row in the {doc_path} record-type table — document it before shipping",
                    c.value
                ),
            );
        }
        if !variants.contains(&c.name) {
            push(
                decoder_path,
                c.line,
                &c.raw,
                format!("`{const_name}` has no matching `Event::{}` variant", c.name),
            );
        }
        let used_in_match = ident_occurrences(&stripped_decoder, const_name)
            .iter()
            .any(|&at| {
                stripped_decoder[at + const_name.len()..]
                    .trim_start()
                    .starts_with("=>")
            });
        if !used_in_match {
            push(
                decoder_path,
                c.line,
                &c.raw,
                format!("`{const_name}` is defined but never matched in the record decoder"),
            );
        }
    }

    // Duplicate values on either side.
    for (i, row) in rows.iter().enumerate() {
        if rows[..i].iter().any(|r| r.value == row.value) {
            push(
                doc_path,
                row.line,
                &row.raw,
                format!(
                    "duplicate record type 0x{:02X} in the spec table",
                    row.value
                ),
            );
        }
    }
    for (i, (const_name, c)) in consts.iter().enumerate() {
        if consts[..i].iter().any(|(_, p)| p.value == c.value) {
            push(
                decoder_path,
                c.line,
                &c.raw,
                format!("duplicate record type 0x{:02X} (`{const_name}`)", c.value),
            );
        }
    }
    out
}

/// R6: a crate root must carry `#![forbid(unsafe_code)]` (checked on the
/// code view so a commented-out attribute does not count).
pub fn check_crate_root(rel_path: &str, source: &str) -> Vec<Violation> {
    let scanned = ScannedFile::parse(source);
    let found = scanned.lines.iter().any(|l| {
        let code: String = l.code.split_whitespace().collect();
        code.contains("#![forbid(unsafe_code)]")
    });
    if found {
        Vec::new()
    } else {
        vec![Violation {
            rule: "R6",
            path: rel_path.to_string(),
            line: 0,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            snippet: String::new(),
        }]
    }
}

/// Everything one linter run produced.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations that survived the allowlist, sorted by path/line/rule.
    pub violations: Vec<Violation>,
    /// Allowlist entries that matched at least one would-be violation is
    /// tracked implicitly; these matched nothing (stale catalog entries).
    pub unused_allows: Vec<AllowEntry>,
    /// Problems in the allowlist file itself.
    pub allow_errors: Vec<AllowFormatError>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Number of violations suppressed by the allowlist.
    pub suppressed: usize,
}

/// Escape `s` for a JSON string body.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl LintReport {
    /// Machine-readable report, schema-stable for CI consumption:
    ///
    /// ```json
    /// {
    ///   "schema_version": 1,
    ///   "files_scanned": 93,
    ///   "suppressed": 31,
    ///   "clean": true,
    ///   "violations":    [{"rule": "R7", "path": "…", "line": 12,
    ///                      "message": "…", "snippet": "…"}],
    ///   "allow_errors":  [{"line": 3, "message": "…"}],
    ///   "unused_allows": [{"line": 9, "rule": "R5", "path": "…",
    ///                      "snippet": "…"}]
    /// }
    /// ```
    ///
    /// Field order and names are part of the schema; additions bump
    /// `schema_version`. `clean` mirrors the process exit status (no
    /// violations and no allowlist format errors).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": 1,");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"suppressed\": {},", self.suppressed);
        let _ = writeln!(
            out,
            "  \"clean\": {},",
            self.violations.is_empty() && self.allow_errors.is_empty()
        );
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\", \"snippet\": \"{}\"}}",
                json_escape(v.rule),
                json_escape(&v.path),
                v.line,
                json_escape(&v.message),
                json_escape(&v.snippet)
            );
        }
        out.push_str(if self.violations.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"allow_errors\": [");
        for (i, e) in self.allow_errors.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    {{\"line\": {}, \"message\": \"{}\"}}",
                e.line,
                json_escape(&e.message)
            );
        }
        out.push_str(if self.allow_errors.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"unused_allows\": [");
        for (i, a) in self.unused_allows.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    {{\"line\": {}, \"rule\": \"{}\", \"path\": \"{}\", \"snippet\": \"{}\"}}",
                a.line,
                json_escape(&a.rule),
                json_escape(&a.path),
                json_escape(&a.snippet)
            );
        }
        out.push_str(if self.unused_allows.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }
}

/// Directories never descended into during the walk.
fn skip_dir(name: &str) -> bool {
    matches!(
        name,
        "target" | "shims" | "results" | "fixtures" | ".git" | "tests" | "benches" | "examples"
    )
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !skip_dir(&name) {
                walk_rs(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes.
fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Lint the whole workspace rooted at `root`, applying the allowlist at
/// `root/abr-lint.allow` (if present). Runs every rule: the per-file
/// rules over each source, R6 over crate roots, R7 per crate, and R10
/// over the `docs/REPLAY.md` × `replay.rs` pair.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let allow_text = fs::read_to_string(root.join("abr-lint.allow")).unwrap_or_default();
    let (allows, allow_errors) = allow::parse(&allow_text);

    // Collect the source trees: every member's `src/` plus the umbrella's.
    let mut files = Vec::new();
    let mut crate_roots = Vec::new();
    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    members.sort();
    members.push(root.to_path_buf());
    for member in &members {
        let src = member.join("src");
        if !src.is_dir() {
            continue;
        }
        walk_rs(&src, &mut files)?;
        let lib = src.join("lib.rs");
        let main = src.join("main.rs");
        if lib.is_file() {
            crate_roots.push(lib);
        } else if main.is_file() {
            crate_roots.push(main);
        }
    }

    // Read each source once; every rule below shares this snapshot.
    let mut sources: Vec<(String, String)> = Vec::new();
    for path in &files {
        sources.push((rel(root, path), fs::read_to_string(path)?));
    }

    let mut raw: Vec<Violation> = Vec::new();
    let files_scanned = sources.len();
    for (rel_path, source) in &sources {
        raw.extend(check_file(rel_path, source));
    }
    for path in &crate_roots {
        let source = fs::read_to_string(path)?;
        raw.extend(check_crate_root(&rel(root, path), &source));
    }

    // R7: group by crate, run the call-graph pass per crate.
    let mut by_crate: std::collections::BTreeMap<String, Vec<(String, String)>> =
        std::collections::BTreeMap::new();
    for (rel_path, source) in &sources {
        if let Some(krate) = crate_of(rel_path) {
            by_crate
                .entry(krate.to_string())
                .or_default()
                .push((rel_path.clone(), source.clone()));
        }
    }
    for crate_files in by_crate.values() {
        raw.extend(check_crate_hot_paths(crate_files));
    }

    // R10: the spec × decoder cross-check.
    let doc_path = root.join(R10_DOC);
    let decoder_path = root.join(R10_DECODER);
    if doc_path.is_file() && decoder_path.is_file() {
        let doc = fs::read_to_string(&doc_path)?;
        let decoder = fs::read_to_string(&decoder_path)?;
        raw.extend(check_spec_drift(R10_DOC, &doc, R10_DECODER, &decoder));
    }

    // Apply the allowlist.
    let mut used = vec![false; allows.len()];
    let mut violations = Vec::new();
    let mut suppressed = 0;
    for v in raw {
        let hit = allows
            .iter()
            .position(|a| a.covers(v.rule, &v.path, &v.snippet));
        match hit {
            Some(i) => {
                used[i] = true;
                suppressed += 1;
            }
            None => violations.push(v),
        }
    }
    violations
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    let unused_allows = allows
        .into_iter()
        .zip(used)
        .filter_map(|(a, u)| (!u).then_some(a))
        .collect();
    Ok(LintReport {
        violations,
        unused_allows,
        allow_errors,
        files_scanned,
        suppressed,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn crate_scoping() {
        assert_eq!(crate_of("crates/abr-sim/src/player.rs"), Some("abr-sim"));
        assert_eq!(crate_of("src/lib.rs"), Some("cava-suite"));
        assert_eq!(crate_of("scripts/check.sh"), None);
    }

    #[test]
    fn float_literal_tokens() {
        assert!(is_float_literal("0.0"));
        assert!(is_float_literal("1.5e3"));
        assert!(is_float_literal("-2."));
        assert!(!is_float_literal("x"));
        assert!(!is_float_literal("self.x"));
        assert!(!is_float_literal("10"));
        assert!(!is_float_literal(""));
    }

    #[test]
    fn r4_ignores_integer_and_ident_comparisons() {
        let src = "fn f(a: usize, b: f64) -> bool { a == 3 && b >= 0.0 }\n";
        assert!(check_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn r4_flags_float_eq() {
        let src = "fn f(b: f64) -> bool { b == 0.0 }\n";
        let v = check_file("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "R4");
    }

    #[test]
    fn rules_scope_by_crate() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(check_file("crates/bench/src/x.rs", src).len(), 1);
        assert!(check_file("crates/vbr-video/src/x.rs", src).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_trip_rules() {
        let src = "// HashMap thread_rng Instant::now\nlet s = \"HashMap .unwrap()\";\n";
        assert!(check_file("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); let _ = b == 0.0; }\n}\n";
        assert!(check_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn crate_root_rule() {
        assert!(check_crate_root("crates/x/src/lib.rs", "#![forbid(unsafe_code)]\n").is_empty());
        let v = check_crate_root("crates/x/src/lib.rs", "//! docs only\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "R6");
        // A commented-out attribute does not count.
        let v = check_crate_root("crates/x/src/lib.rs", "// #![forbid(unsafe_code)]\n");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn registry_knows_every_rule_exactly_once() {
        assert_eq!(RULES.len(), 10);
        for r in RULES {
            assert_eq!(rule_by_id(r.id), Some(r));
        }
        assert_eq!(rule_by_id("R11"), None);
        assert_eq!(rule_by_id("X1"), None);
    }

    #[test]
    fn r8_lock_guard_across_write_is_flagged() {
        let src = "fn f(m: &std::sync::Mutex<i32>, w: &mut impl std::io::Write) {\n    let g = m.lock();\n    w.write_all(b\"x\");\n}\n";
        let v = check_file("crates/abr-serve/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "R8");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn r8_lock_guard_across_reactor_sweep_helper_is_flagged() {
        // The reactor's pump/fill/drain_frames do socket I/O internally;
        // holding a shard or session guard across a sweep call is the
        // same bug as holding it across a bare read/write.
        let src = "fn f(m: &std::sync::Mutex<i32>, c: &mut Conn) {\n    let g = m.lock();\n    c.pump(server, scratch);\n}\n";
        let v = check_file("crates/abr-serve/src/reactor.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "R8");
        assert_eq!(v[0].line, 2);
        let src = "fn f(m: &std::sync::Mutex<i32>, c: &mut Conn) {\n    let g = m.lock();\n    drop(g);\n    c.fill(scratch, progress);\n    c.drain_frames(server, progress);\n}\n";
        assert!(check_file("crates/abr-serve/src/reactor.rs", src).is_empty());
    }

    #[test]
    fn r8_explicit_drop_ends_the_guard_scope() {
        let src = "fn f(m: &std::sync::Mutex<i32>, w: &mut impl std::io::Write) {\n    let g = m.lock();\n    drop(g);\n    w.write_all(b\"x\");\n}\n";
        assert!(check_file("crates/abr-serve/src/x.rs", src).is_empty());
    }

    #[test]
    fn r8_block_scoped_guard_released_before_io_is_clean() {
        let src = "fn f(m: &std::sync::Mutex<i32>, w: &mut impl std::io::Write) {\n    { let g = m.lock(); }\n    w.write_all(b\"x\");\n}\n";
        assert!(check_file("crates/abr-serve/src/x.rs", src).is_empty());
    }

    #[test]
    fn r9_unguarded_narrowing_cast_in_protocol() {
        let src = "fn encode(len: usize, out: &mut Vec<u8>) {\n    out.extend_from_slice(&(len as u32).to_le_bytes());\n}\n";
        let v = check_file("crates/abr-serve/src/protocol.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "R9");
        // Same code outside the watched files is not in scope.
        assert!(check_file("crates/abr-serve/src/server.rs", src).is_empty());
    }

    #[test]
    fn r9_guarded_cast_is_clean() {
        let src = "fn encode(len: usize, out: &mut Vec<u8>) {\n    let len = u32::try_from(len).unwrap_or(0);\n    out.extend_from_slice(&(len as u16).to_le_bytes());\n}\n";
        let flagged: Vec<_> = check_file("crates/abr-serve/src/protocol.rs", src)
            .into_iter()
            .filter(|v| v.rule == "R9")
            .collect();
        assert!(flagged.is_empty(), "{flagged:?}");
    }

    #[test]
    fn r9_widening_casts_are_ignored() {
        let src = "fn encode(x: u32, out: &mut Vec<u8>) {\n    let y = x as u64;\n    out.extend_from_slice(&y.to_le_bytes());\n}\n";
        assert!(check_file("crates/abr-serve/src/protocol.rs", src).is_empty());
    }

    #[test]
    fn json_report_is_schema_stable() {
        let report = LintReport {
            violations: vec![Violation {
                rule: "R7",
                path: "crates/x/src/a.rs".to_string(),
                line: 3,
                message: "heap allocation `vec![`".to_string(),
                snippet: "let v = vec![0; \"n\".len()];".to_string(),
            }],
            unused_allows: Vec::new(),
            allow_errors: Vec::new(),
            files_scanned: 2,
            suppressed: 1,
        };
        let json = report.to_json();
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\"rule\": \"R7\""));
        assert!(json.contains("\\\"n\\\""), "quotes escaped: {json}");
        let clean = LintReport {
            files_scanned: 2,
            ..Default::default()
        };
        assert!(clean.to_json().contains("\"clean\": true"));
        assert!(clean.to_json().contains("\"violations\": []"));
    }

    #[test]
    fn camel_case_of_record_constants() {
        assert_eq!(camel_of_const("SESSION_OPENED"), "SessionOpened");
        assert_eq!(camel_of_const("RUN_META"), "RunMeta");
        assert_eq!(camel_of_const("FRAME_IN"), "FrameIn");
    }
}
