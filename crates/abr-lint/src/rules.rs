//! The determinism/correctness rules (R1–R6) and the workspace walker.
//!
//! | rule | scope | what it forbids |
//! |------|-------|-----------------|
//! | R1 | sim/algorithm crates + `bench` | `Instant::now`/`SystemTime::now` — wall-clock reads; simulated time must flow from the simulator's clock |
//! | R2 | `bench`, `sim-report` | `HashMap`/`HashSet` — iteration order nondeterminism feeding journals/reports/CSVs; use `BTreeMap`/`BTreeSet` |
//! | R3 | all crates | `thread_rng`/`from_entropy`/`OsRng`/`rand::random` — OS entropy; all RNG must be seeded through the dataset/trace seed plumbing |
//! | R4 | algorithm crates | `==`/`!=` against float literals in decision logic — exact float comparison is platform/ordering bait |
//! | R5 | library crates | `.unwrap()`/`.expect(` outside tests — I/O and parse failures must propagate; provably-infallible cases go in the allowlist |
//! | R6 | every crate root | missing `#![forbid(unsafe_code)]` |
//!
//! Test code (`#[cfg(test)]` regions; `tests/`, `benches/`, `examples/`
//! trees) is exempt from the line rules. Exemptions in real code go through
//! the catalogued allowlist (see [`crate::allow`]).

use crate::allow::{self, AllowEntry, AllowFormatError};
use crate::scan::ScannedFile;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose code runs inside (or feeds) the simulation: wall-clock
/// reads here desynchronize results from the simulated clock (R1).
/// `bench` is included because its journal/progress timing must stay
/// confined to the one allowlisted module (`crates/bench/src/journal.rs`).
const SIM_CRATES: &[&str] = &[
    "core",
    "abr-sim",
    "abr-baselines",
    "abr-serve",
    "vbr-video",
    "net-trace",
    "bench",
];

/// Crates that produce journal/report/CSV output (R2): iteration order must
/// be deterministic, so unordered hash collections are banned outright.
const OUTPUT_CRATES: &[&str] = &["bench", "sim-report", "abr-serve"];

/// Crates holding ABR decision logic (R4).
const ALGO_CRATES: &[&str] = &["core", "abr-sim", "abr-baselines", "abr-serve"];

/// Library crates (R5): panicking on I/O or parse results is banned; the
/// provably-infallible cases are catalogued in the allowlist.
const LIBRARY_CRATES: &[&str] = &[
    "core",
    "abr-sim",
    "abr-baselines",
    "abr-serve",
    "vbr-video",
    "net-trace",
    "sim-report",
];

/// One rule violation at a specific line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (`"R1"`..`"R6"`).
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line number (0 for file-level rules like R6).
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// The offending raw line (trimmed), for context.
    pub snippet: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}: {}: {}", self.path, self.rule, self.message)
        } else {
            write!(
                f,
                "{}:{}: {}: {}\n    {}",
                self.path, self.line, self.rule, self.message, self.snippet
            )
        }
    }
}

/// Which crate (directory name under `crates/`, or `"cava-suite"` for the
/// umbrella `src/`) a workspace-relative path belongs to.
fn crate_of(rel_path: &str) -> Option<&str> {
    if let Some(rest) = rel_path.strip_prefix("crates/") {
        rest.split('/').next()
    } else if rel_path.starts_with("src/") {
        Some("cava-suite")
    } else {
        None
    }
}

fn in_scope(rel_path: &str, crates: &[&str]) -> bool {
    crate_of(rel_path).is_some_and(|c| crates.contains(&c))
}

/// Byte offsets of every word-boundary occurrence of `ident` in `code`.
fn ident_occurrences(code: &str, ident: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(ident) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + ident.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + ident.len();
    }
    out
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Whether `tok` is a floating-point literal (`0.0`, `1.5e3`, `2.`).
fn is_float_literal(tok: &str) -> bool {
    let tok = tok.strip_prefix('-').unwrap_or(tok);
    let mut chars = tok.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_digit()) && tok.contains('.')
}

/// The token (identifier/number/path chars) ending immediately before byte
/// `at` in `code`, skipping trailing whitespace.
fn token_before(code: &str, at: usize) -> &str {
    let head = code[..at].trim_end();
    let start = head
        .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '.'))
        .map(|i| i + 1)
        .unwrap_or(0);
    &head[start..]
}

/// The token starting immediately after byte `at` in `code`, skipping
/// leading whitespace (a leading `-` is kept so `-0.5` reads as a float).
fn token_after(code: &str, at: usize) -> &str {
    let tail = code[at..].trim_start();
    let mut end = 0;
    for (i, c) in tail.char_indices() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == '.' || (i == 0 && c == '-');
        if !ok {
            break;
        }
        end = i + c.len_utf8();
    }
    &tail[..end]
}

/// Apply the line-level rules R1–R5 to one file. `rel_path` controls which
/// rules are in scope; test code is skipped.
pub fn check_file(rel_path: &str, source: &str) -> Vec<Violation> {
    let scanned = ScannedFile::parse(source);
    let mut out = Vec::new();
    let r1 = in_scope(rel_path, SIM_CRATES);
    let r2 = in_scope(rel_path, OUTPUT_CRATES);
    let r3 = crate_of(rel_path).is_some();
    let r4 = in_scope(rel_path, ALGO_CRATES);
    let r5 = in_scope(rel_path, LIBRARY_CRATES);
    for (idx, line) in scanned.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let n = idx + 1;
        let code = line.code.as_str();
        let mut push = |rule: &'static str, message: String| {
            out.push(Violation {
                rule,
                path: rel_path.to_string(),
                line: n,
                message,
                snippet: line.raw.trim().to_string(),
            });
        };
        if r1 {
            for pat in ["Instant::now", "SystemTime::now"] {
                if !ident_occurrences(code, pat.split("::").next().unwrap_or(pat)).is_empty()
                    && code.contains(pat)
                {
                    push(
                        "R1",
                        format!("wall-clock read `{pat}` — simulated time must come from the simulator clock"),
                    );
                }
            }
        }
        if r2 {
            for pat in ["HashMap", "HashSet"] {
                if !ident_occurrences(code, pat).is_empty() {
                    push(
                        "R2",
                        format!("unordered `{pat}` in an output-producing crate — use `BTreeMap`/`BTreeSet` so journal/report/CSV order is byte-stable"),
                    );
                }
            }
        }
        if r3 {
            for pat in ["thread_rng", "from_entropy", "OsRng"] {
                if !ident_occurrences(code, pat).is_empty() {
                    push(
                        "R3",
                        format!("OS entropy via `{pat}` — all randomness must be seeded through the dataset/trace seed plumbing"),
                    );
                }
            }
            if code.contains("rand::random") {
                push(
                    "R3",
                    "OS entropy via `rand::random` — all randomness must be seeded through the dataset/trace seed plumbing".to_string(),
                );
            }
        }
        if r4 {
            for op in ["==", "!="] {
                let mut from = 0;
                while let Some(pos) = code[from..].find(op) {
                    let at = from + pos;
                    from = at + op.len();
                    // Skip `<=`, `>=`, `=>`-adjacent forms: only bare
                    // `==`/`!=` between tokens qualify.
                    if at > 0 && matches!(&code[at - 1..at], "<" | ">" | "=" | "!") {
                        continue;
                    }
                    if code[at + op.len()..].starts_with('=') {
                        continue;
                    }
                    let lhs = token_before(code, at);
                    let rhs = token_after(code, at + op.len());
                    if is_float_literal(lhs) || is_float_literal(rhs) {
                        push(
                            "R4",
                            format!("exact float comparison `{lhs} {op} {rhs}` in ABR decision logic — compare against a tolerance instead"),
                        );
                    }
                }
            }
        }
        if r5 {
            for pat in [".unwrap()", ".expect("] {
                if code.contains(pat) {
                    push(
                        "R5",
                        format!("`{pat}` in library code — propagate the error; provably-infallible cases need an allowlist entry"),
                    );
                }
            }
        }
    }
    out
}

/// R6: a crate root must carry `#![forbid(unsafe_code)]` (checked on the
/// code view so a commented-out attribute does not count).
pub fn check_crate_root(rel_path: &str, source: &str) -> Vec<Violation> {
    let scanned = ScannedFile::parse(source);
    let found = scanned.lines.iter().any(|l| {
        let code: String = l.code.split_whitespace().collect();
        code.contains("#![forbid(unsafe_code)]")
    });
    if found {
        Vec::new()
    } else {
        vec![Violation {
            rule: "R6",
            path: rel_path.to_string(),
            line: 0,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            snippet: String::new(),
        }]
    }
}

/// Everything one linter run produced.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations that survived the allowlist, sorted by path/line/rule.
    pub violations: Vec<Violation>,
    /// Allowlist entries that matched at least one would-be violation is
    /// tracked implicitly; these matched nothing (stale catalog entries).
    pub unused_allows: Vec<AllowEntry>,
    /// Problems in the allowlist file itself.
    pub allow_errors: Vec<AllowFormatError>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Number of violations suppressed by the allowlist.
    pub suppressed: usize,
}

/// Directories never descended into during the walk.
fn skip_dir(name: &str) -> bool {
    matches!(
        name,
        "target" | "shims" | "results" | "fixtures" | ".git" | "tests" | "benches" | "examples"
    )
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !skip_dir(&name) {
                walk_rs(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes.
fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Lint the whole workspace rooted at `root`, applying the allowlist at
/// `root/abr-lint.allow` (if present).
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let allow_text = fs::read_to_string(root.join("abr-lint.allow")).unwrap_or_default();
    let (allows, allow_errors) = allow::parse(&allow_text);

    // Collect the source trees: every member's `src/` plus the umbrella's.
    let mut files = Vec::new();
    let mut crate_roots = Vec::new();
    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    members.sort();
    members.push(root.to_path_buf());
    for member in &members {
        let src = member.join("src");
        if !src.is_dir() {
            continue;
        }
        walk_rs(&src, &mut files)?;
        let lib = src.join("lib.rs");
        let main = src.join("main.rs");
        if lib.is_file() {
            crate_roots.push(lib);
        } else if main.is_file() {
            crate_roots.push(main);
        }
    }

    let mut raw: Vec<Violation> = Vec::new();
    let mut files_scanned = 0;
    for path in &files {
        let source = fs::read_to_string(path)?;
        files_scanned += 1;
        raw.extend(check_file(&rel(root, path), &source));
    }
    for path in &crate_roots {
        let source = fs::read_to_string(path)?;
        raw.extend(check_crate_root(&rel(root, path), &source));
    }

    // Apply the allowlist.
    let mut used = vec![false; allows.len()];
    let mut violations = Vec::new();
    let mut suppressed = 0;
    for v in raw {
        let hit = allows
            .iter()
            .position(|a| a.covers(v.rule, &v.path, &v.snippet));
        match hit {
            Some(i) => {
                used[i] = true;
                suppressed += 1;
            }
            None => violations.push(v),
        }
    }
    violations
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    let unused_allows = allows
        .into_iter()
        .zip(used)
        .filter_map(|(a, u)| (!u).then_some(a))
        .collect();
    Ok(LintReport {
        violations,
        unused_allows,
        allow_errors,
        files_scanned,
        suppressed,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn crate_scoping() {
        assert_eq!(crate_of("crates/abr-sim/src/player.rs"), Some("abr-sim"));
        assert_eq!(crate_of("src/lib.rs"), Some("cava-suite"));
        assert_eq!(crate_of("scripts/check.sh"), None);
    }

    #[test]
    fn float_literal_tokens() {
        assert!(is_float_literal("0.0"));
        assert!(is_float_literal("1.5e3"));
        assert!(is_float_literal("-2."));
        assert!(!is_float_literal("x"));
        assert!(!is_float_literal("self.x"));
        assert!(!is_float_literal("10"));
        assert!(!is_float_literal(""));
    }

    #[test]
    fn r4_ignores_integer_and_ident_comparisons() {
        let src = "fn f(a: usize, b: f64) -> bool { a == 3 && b >= 0.0 }\n";
        assert!(check_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn r4_flags_float_eq() {
        let src = "fn f(b: f64) -> bool { b == 0.0 }\n";
        let v = check_file("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "R4");
    }

    #[test]
    fn rules_scope_by_crate() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(check_file("crates/bench/src/x.rs", src).len(), 1);
        assert!(check_file("crates/vbr-video/src/x.rs", src).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_trip_rules() {
        let src = "// HashMap thread_rng Instant::now\nlet s = \"HashMap .unwrap()\";\n";
        assert!(check_file("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); let _ = b == 0.0; }\n}\n";
        assert!(check_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn crate_root_rule() {
        assert!(check_crate_root("crates/x/src/lib.rs", "#![forbid(unsafe_code)]\n").is_empty());
        let v = check_crate_root("crates/x/src/lib.rs", "//! docs only\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "R6");
        // A commented-out attribute does not count.
        let v = check_crate_root("crates/x/src/lib.rs", "// #![forbid(unsafe_code)]\n");
        assert_eq!(v.len(), 1);
    }
}
