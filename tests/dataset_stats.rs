// Integration tests sit outside cfg(test), so opt out of the library-only
// workspace lints here explicitly.
#![allow(clippy::unwrap_used, clippy::float_cmp)]

//! §2/§3 characterization claims, verified across the *entire* 16-video
//! dataset (the per-module unit tests check single videos; this is the
//! corpus-level statement the paper makes).

use cava_suite::prelude::*;
use cava_suite::video::classify::{cross_track_consistency, ChunkClass};
use cava_suite::video::quality::VmafModel;

#[test]
fn section_2_bitrate_statistics_across_dataset() {
    for video in Dataset::conext18() {
        for track in video.tracks() {
            let cov = track.bitrate_cov();
            let ratio = track.peak_to_avg();
            if track.level() >= 2 {
                assert!(
                    (0.2..=0.7).contains(&cov),
                    "{} track {}: CoV {cov}",
                    video.name(),
                    track.level()
                );
                assert!(
                    (1.1..=2.6).contains(&ratio),
                    "{} track {}: peak/avg {ratio}",
                    video.name(),
                    track.level()
                );
            } else {
                // The two lowest tracks have the lowest variability.
                assert!(
                    cov <= video.track(3).bitrate_cov() + 1e-9,
                    "{} track {}: CoV {cov} above mid-track",
                    video.name(),
                    track.level()
                );
            }
        }
    }
}

#[test]
fn section_3_1_1_classification_consistency_across_dataset() {
    // Property 2: chunk sizes are consistent across tracks for every video.
    for video in Dataset::conext18() {
        let min_corr = cross_track_consistency(&video);
        assert!(
            min_corr > 0.8,
            "{}: min cross-track correlation {min_corr}",
            video.name()
        );
    }
}

#[test]
fn section_3_1_1_q4_marks_high_si_ti() {
    // Property 1: Q4 chunks have clearly higher SI/TI than Q1, everywhere.
    for video in Dataset::conext18() {
        let c = Classification::from_video(&video);
        let sc = video.complexity();
        let mean_of = |class: ChunkClass, f: &dyn Fn(usize) -> f64| {
            let pos = c.positions_of(class);
            pos.iter().map(|&i| f(i)).sum::<f64>() / pos.len() as f64
        };
        let si_q1 = mean_of(ChunkClass::Q1, &|i| sc.si(i));
        let si_q4 = mean_of(ChunkClass::Q4, &|i| sc.si(i));
        let ti_q1 = mean_of(ChunkClass::Q1, &|i| sc.ti(i));
        let ti_q4 = mean_of(ChunkClass::Q4, &|i| sc.ti(i));
        // Margin calibrated against the offline `rand` shim's stream
        // (shims/README.md); Sintel's SI gap sits near 4.5 there.
        assert!(
            si_q4 > si_q1 + 4.0,
            "{}: SI {si_q1} vs {si_q4}",
            video.name()
        );
        assert!(
            ti_q4 > ti_q1 + 2.0,
            "{}: TI {ti_q1} vs {ti_q4}",
            video.name()
        );
    }
}

#[test]
fn section_3_1_2_quality_inversion_across_dataset() {
    // Q4 chunks have the worst quality in the track, despite the most bits —
    // for every video and every mid/high track, under both VMAF models.
    for video in Dataset::conext18() {
        let c = Classification::from_video(&video);
        for level in 2..video.n_tracks() {
            for model in [VmafModel::Tv, VmafModel::Phone] {
                let mean_of = |class: ChunkClass| {
                    let pos = c.positions_of(class);
                    pos.iter()
                        .map(|&i| video.quality(level, i).vmaf(model))
                        .sum::<f64>()
                        / pos.len() as f64
                };
                let q1 = mean_of(ChunkClass::Q1);
                let q4 = mean_of(ChunkClass::Q4);
                assert!(
                    q4 < q1 - 2.0,
                    "{} track {level} {model:?}: Q4 {q4} !< Q1 {q1}",
                    video.name()
                );
                // And sizes go the other way.
                let size_of = |class: ChunkClass| {
                    let pos = c.positions_of(class);
                    pos.iter()
                        .map(|&i| video.track(level).chunk_bytes(i) as f64)
                        .sum::<f64>()
                        / pos.len() as f64
                };
                assert!(size_of(ChunkClass::Q4) > size_of(ChunkClass::Q1) * 1.5);
            }
        }
    }
}

#[test]
fn section_3_3_cap4x_narrows_but_keeps_the_gap() {
    // The 4x cap improves Q4 quality relative to 2x, but Q4 stays below
    // Q1-Q3 ("inherently very difficult to encode complex scenes").
    let cap2 = Dataset::ed_ffmpeg_h264();
    let cap4 = Dataset::ed_ffmpeg_h264_cap4();
    let track = cap2.n_tracks() / 2;
    let gap = |video: &Video| {
        let c = Classification::from_video(video);
        let mean_of = |class: ChunkClass| {
            let pos = c.positions_of(class);
            pos.iter()
                .map(|&i| video.quality(track, i).vmaf_phone)
                .sum::<f64>()
                / pos.len() as f64
        };
        mean_of(ChunkClass::Q1) - mean_of(ChunkClass::Q4)
    };
    let gap2 = gap(&cap2);
    let gap4 = gap(&cap4);
    assert!(gap4 > 2.0, "4x cap gap must persist: {gap4}");
    assert!(
        gap4 < gap2 + 1.0,
        "4x gap {gap4} should not exceed 2x gap {gap2}"
    );
}

#[test]
fn dataset_builds_are_reproducible() {
    let a = Dataset::conext18();
    let b = Dataset::conext18();
    assert_eq!(a, b);
}
