// Integration tests sit outside cfg(test), so opt out of the library-only
// workspace lints here explicitly.
#![allow(clippy::unwrap_used, clippy::float_cmp)]

//! Cross-crate integration tests: full streaming sessions with every scheme
//! on both chunk durations and both trace families, exercising the complete
//! pipeline (dataset → manifest → simulator → metrics).

use cava_suite::net::fcc::{fcc_trace, FccConfig};
use cava_suite::net::lte::{lte_trace, LteConfig};
use cava_suite::prelude::*;
use cava_suite::video::quality::VmafModel;

fn all_schemes(video: &Video) -> Vec<Box<dyn AbrAlgorithm>> {
    vec![
        Box::new(Cava::paper_default()),
        Box::new(Cava::p1()),
        Box::new(Cava::p12()),
        Box::new(Mpc::mpc()),
        Box::new(Mpc::robust()),
        Box::new(PandaCq::max_sum(video, VmafModel::Phone)),
        Box::new(PandaCq::max_min(video, VmafModel::Phone)),
        Box::new(Rba::paper_default()),
        Box::new(Bba1::paper_default()),
        Box::new(Bola::bola()),
        Box::new(Bola::bola_e(BolaBitrateView::Peak)),
        Box::new(Bola::bola_e(BolaBitrateView::Average)),
        Box::new(Bola::bola_e(BolaBitrateView::Segment)),
    ]
}

#[test]
fn every_scheme_completes_every_video_kind() {
    let sim = Simulator::paper_default();
    let lte = lte_trace(5, &LteConfig::default());
    let fcc = fcc_trace(5, &FccConfig::default());
    for video in [
        Dataset::ed_ffmpeg_h264(),                            // 2 s chunks
        Dataset::ed_youtube_h264(),                           // 5 s chunks
        Dataset::by_name("ED-ffmpeg-h265").expect("dataset"), // H.265
    ] {
        let manifest = Manifest::from_video(&video);
        let classification = Classification::from_video(&video);
        for mut algo in all_schemes(&video) {
            for (trace, qoe) in [(&lte, QoeConfig::lte()), (&fcc, QoeConfig::fcc())] {
                let session = sim.run(algo.as_mut(), &manifest, trace);
                assert_eq!(
                    session.n_chunks(),
                    manifest.n_chunks(),
                    "{} on {}",
                    algo.name(),
                    video.name()
                );
                session
                    .validate()
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", algo.name(), video.name()));
                let m = evaluate(&session, &video, &classification, &qoe);
                assert!(m.all_quality_mean > 0.0 && m.all_quality_mean <= 100.0);
                assert!(m.rebuffer_s >= 0.0);
            }
        }
    }
}

#[test]
fn sessions_are_deterministic_across_instances() {
    let video = Dataset::ed_youtube_h264();
    let manifest = Manifest::from_video(&video);
    let trace = lte_trace(11, &LteConfig::default());
    let sim = Simulator::paper_default();
    for (a, b) in [
        (
            Box::new(Cava::paper_default()) as Box<dyn AbrAlgorithm>,
            Box::new(Cava::paper_default()) as Box<dyn AbrAlgorithm>,
        ),
        (Box::new(Mpc::robust()), Box::new(Mpc::robust())),
        (
            Box::new(Bola::bola_e(BolaBitrateView::Segment)),
            Box::new(Bola::bola_e(BolaBitrateView::Segment)),
        ),
    ] {
        let mut a = a;
        let mut b = b;
        let ra = sim.run(a.as_mut(), &manifest, &trace);
        let rb = sim.run(b.as_mut(), &manifest, &trace);
        assert_eq!(ra, rb, "{}", a.name());
    }
}

#[test]
fn wall_time_identity_holds_for_every_scheme() {
    // wall time == playback duration + startup + stalls, exactly.
    let video = Dataset::ed_ffmpeg_h264();
    let manifest = Manifest::from_video(&video);
    let trace = lte_trace(3, &LteConfig::default());
    let sim = Simulator::paper_default();
    for mut algo in all_schemes(&video) {
        let s = sim.run(algo.as_mut(), &manifest, &trace);
        let expected = manifest.duration_secs() + s.startup_delay_s + s.total_stall_s;
        assert!(
            (s.wall_time_s - expected).abs() < 1e-6,
            "{}: wall {} expected {expected}",
            algo.name(),
            s.wall_time_s
        );
    }
}

#[test]
fn manifest_round_trip_preserves_decisions() {
    // Serializing the manifest to JSON and back must not change what any
    // manifest-driven scheme decides.
    let video = Dataset::ed_youtube_h264();
    let manifest = Manifest::from_video(&video);
    let restored = Manifest::from_json(&manifest.to_json()).expect("round trip");
    assert_eq!(manifest, restored);
    let trace = lte_trace(9, &LteConfig::default());
    let sim = Simulator::paper_default();
    let mut cava1 = Cava::paper_default();
    let mut cava2 = Cava::paper_default();
    let a = sim.run(&mut cava1, &manifest, &trace);
    let b = sim.run(&mut cava2, &restored, &trace);
    assert_eq!(a.levels(), b.levels());
}

#[test]
fn tiny_video_and_tiny_buffer_edge_cases() {
    // A 4-chunk video with a buffer barely above one chunk must still
    // complete under every scheme.
    use cava_suite::video::encoder::{EncoderConfig, EncoderSource};
    let video = Video::synthesize(
        "tiny",
        Genre::Animation,
        4,
        2.0,
        &Ladder::ffmpeg_h264(),
        &EncoderConfig::capped_2x(EncoderSource::FFmpeg, 1),
        1,
    );
    let manifest = Manifest::from_video(&video);
    let sim = Simulator::new(PlayerConfig {
        startup_threshold_s: 2.0,
        max_buffer_s: 5.0,
        ..PlayerConfig::default()
    });
    let trace = lte_trace(1, &LteConfig::default());
    for mut algo in all_schemes(&video) {
        let s = sim.run(algo.as_mut(), &manifest, &trace);
        assert_eq!(s.n_chunks(), 4, "{}", algo.name());
        assert!(s.validate().is_ok());
    }
}

#[test]
fn zero_bandwidth_outage_recovers() {
    // A 3-minute total outage mid-stream: sessions stall but finish.
    let video = Dataset::ed_youtube_h264();
    let manifest = Manifest::from_video(&video);
    let mut samples = vec![5.0e6; 120];
    samples.extend(vec![0.0; 180]);
    samples.extend(vec![5.0e6; 1200]);
    let trace = Trace::new("blackout", 1.0, samples);
    let sim = Simulator::paper_default();
    for mut algo in all_schemes(&video) {
        let s = sim.run(algo.as_mut(), &manifest, &trace);
        assert_eq!(s.n_chunks(), manifest.n_chunks(), "{}", algo.name());
        assert!(s.validate().is_ok(), "{}", algo.name());
    }
}
