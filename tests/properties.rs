// Integration tests sit outside cfg(test), so opt out of the library-only
// workspace lints here explicitly.
#![allow(clippy::unwrap_used, clippy::float_cmp)]

//! Property-based tests (proptest) over the core invariants of the
//! substrates and of CAVA.

use cava_suite::prelude::*;
use cava_suite::video::encoder::{EncoderConfig, EncoderSource};
use cava_suite::video::quality::QualityModel;
use cava_suite::video::{Codec, Resolution};
use proptest::prelude::*;

/// A random but valid bandwidth trace: 60–400 per-second samples in
/// 0–20 Mbps with at least one positive sample.
fn arb_trace() -> impl Strategy<Value = Trace> {
    (
        proptest::collection::vec(0.0f64..20.0e6, 60..400),
        1.0e5f64..20.0e6,
    )
        .prop_map(|(mut samples, guarantee)| {
            // Ensure the trace is alive.
            samples[0] = guarantee;
            Trace::new("prop", 1.0, samples)
        })
}

fn arb_video() -> impl Strategy<Value = Video> {
    (
        10usize..80,
        prop_oneof![Just(2.0f64), Just(5.0)],
        0u64..1000,
        prop_oneof![
            Just(Genre::Animation),
            Just(Genre::SciFi),
            Just(Genre::Sports),
            Just(Genre::Action)
        ],
    )
        .prop_map(|(n_chunks, delta, seed, genre)| {
            Video::synthesize(
                format!("prop-{seed}"),
                genre,
                n_chunks,
                delta,
                &Ladder::ffmpeg_h264(),
                &EncoderConfig::capped_2x(EncoderSource::FFmpeg, seed),
                seed,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn session_invariants_hold_for_cava(video in arb_video(), trace in arb_trace()) {
        let manifest = Manifest::from_video(&video);
        let mut cava = Cava::paper_default();
        let session = Simulator::paper_default().run(&mut cava, &manifest, &trace);
        // Structural validity.
        prop_assert!(session.validate().is_ok());
        prop_assert_eq!(session.n_chunks(), manifest.n_chunks());
        // Buffer never above the cap.
        for r in &session.records {
            prop_assert!(r.buffer_after_s <= 100.0 + 1e-9);
        }
        // Bytes conservation: the session's bytes are exactly the manifest's
        // bytes for the chosen levels.
        let expected: u64 = session
            .records
            .iter()
            .map(|r| manifest.chunk_bytes(r.level, r.index))
            .sum();
        prop_assert_eq!(session.total_bytes(), expected);
        // Wall-time identity.
        let identity = manifest.duration_secs() + session.startup_delay_s + session.total_stall_s;
        prop_assert!((session.wall_time_s - identity).abs() < 1e-6);
    }

    #[test]
    fn download_time_is_additive(trace in arb_trace(), bytes in 1u64..50_000_000, start in 0.0f64..500.0) {
        // Downloading a+b bytes takes exactly as long as a then b.
        let a = bytes / 3;
        let b = bytes - a;
        let t_whole = trace.download_time(bytes, start);
        let t_a = trace.download_time(a, start);
        let t_b = trace.download_time(b, start + t_a);
        prop_assert!((t_whole - (t_a + t_b)).abs() < 1e-6,
            "whole {t_whole} vs split {}", t_a + t_b);
    }

    #[test]
    fn download_time_monotone_in_bytes(trace in arb_trace(), bytes in 1u64..20_000_000) {
        let t1 = trace.download_time(bytes, 0.0);
        let t2 = trace.download_time(bytes + 1_000_000, 0.0);
        prop_assert!(t2 >= t1);
    }

    #[test]
    fn classification_balanced_and_stable(video in arb_video()) {
        let c = Classification::from_video(&video);
        let counts = c.counts();
        let n = video.n_chunks();
        // Equal-frequency classes, as balanced as ties allow.
        for count in counts {
            prop_assert!(count >= n / 4 - 1 && count <= n / 4 + 2, "{counts:?} for n={n}");
        }
        // Recomputing from the manifest gives the same classes.
        let m = Manifest::from_video(&video);
        prop_assert_eq!(c, Classification::from_manifest(&m));
    }

    #[test]
    fn quality_model_monotone(
        kbps_lo in 100.0f64..2_000.0,
        extra in 1.0f64..4_000.0,
        complexity in 0.2f64..4.0,
    ) {
        let model = QualityModel::new(Codec::H264);
        let q_lo = model.chunk_quality(Resolution::P480, kbps_lo * 1e3, complexity);
        let q_hi = model.chunk_quality(Resolution::P480, (kbps_lo + extra) * 1e3, complexity);
        prop_assert!(q_hi.vmaf_tv >= q_lo.vmaf_tv);
        prop_assert!(q_hi.vmaf_phone >= q_lo.vmaf_phone);
        prop_assert!(q_hi.psnr >= q_lo.psnr);
        prop_assert!(q_hi.ssim >= q_lo.ssim);
    }

    #[test]
    fn quality_model_anti_monotone_in_complexity(
        kbps in 200.0f64..5_000.0,
        c_lo in 0.2f64..1.5,
        c_extra in 0.1f64..2.0,
    ) {
        let model = QualityModel::new(Codec::H264);
        let q_simple = model.chunk_quality(Resolution::P480, kbps * 1e3, c_lo);
        let q_complex = model.chunk_quality(Resolution::P480, kbps * 1e3, c_lo + c_extra);
        prop_assert!(q_complex.vmaf_tv <= q_simple.vmaf_tv);
        prop_assert!(q_complex.vmaf_phone <= q_simple.vmaf_phone);
    }

    #[test]
    fn encoder_respects_budget_and_bounds(video in arb_video()) {
        for t in video.tracks() {
            let declared = t.declared_avg_bps();
            let realized = t.realized_avg_bps();
            prop_assert!((realized / declared - 1.0).abs() < 0.10,
                "track {}: realized {realized} declared {declared}", t.level());
            // Floor and (generous) cap bounds per chunk.
            for i in 0..t.n_chunks() {
                let r = t.chunk_bitrate_bps(i);
                prop_assert!(r >= declared * 0.2, "chunk {i} under floor");
                prop_assert!(r <= declared * 2.6, "chunk {i} over cap");
            }
        }
    }

    #[test]
    fn cava_returns_valid_levels_under_any_config(
        video in arb_video(),
        trace in arb_trace(),
        w in 4.0f64..200.0,
        w_outer in 0.0f64..400.0,
        a4 in 1.0f64..1.5,
        a13 in 0.6f64..1.0,
    ) {
        let config = CavaConfig {
            inner_window_s: w,
            outer_window_s: w_outer,
            enable_proactive: w_outer > 0.0,
            alpha_q4: a4,
            alpha_q13: a13,
            ..CavaConfig::paper_default()
        };
        let manifest = Manifest::from_video(&video);
        let mut cava = Cava::new(config);
        let session = Simulator::paper_default().run(&mut cava, &manifest, &trace);
        prop_assert!(session.validate().is_ok());
        for r in &session.records {
            prop_assert!(r.level < manifest.n_tracks());
        }
    }

    #[test]
    fn cdf_quantiles_bounded_by_extremes(values in proptest::collection::vec(-1.0e6f64..1.0e6, 1..200)) {
        let cdf = Cdf::new(&values).expect("non-NaN");
        for p in [0.0, 0.1, 0.5, 0.9, 1.0] {
            let q = cdf.quantile(p);
            prop_assert!(q >= cdf.min() - 1e-9 && q <= cdf.max() + 1e-9);
        }
        prop_assert_eq!(cdf.fraction_at(cdf.max()), 1.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn mpd_round_trip_for_random_videos(video in arb_video()) {
        use cava_suite::video::mpd::{from_mpd_xml, to_mpd_xml};
        let manifest = Manifest::from_video(&video);
        let parsed = from_mpd_xml(&to_mpd_xml(&manifest)).expect("round trip");
        prop_assert_eq!(parsed.n_tracks(), manifest.n_tracks());
        prop_assert_eq!(parsed.n_chunks(), manifest.n_chunks());
        prop_assert!((parsed.chunk_duration() - manifest.chunk_duration()).abs() < 1e-9);
        for l in 0..manifest.n_tracks() {
            prop_assert_eq!(parsed.track(l).chunk_bytes(), manifest.track(l).chunk_bytes());
        }
        // The client-side classification — CAVA's input — survives exactly.
        prop_assert_eq!(
            Classification::from_manifest(&parsed),
            Classification::from_manifest(&manifest)
        );
    }

    #[test]
    fn live_sessions_respect_the_edge(
        video in arb_video(),
        trace in arb_trace(),
        head_start in 1usize..8,
    ) {
        let manifest = Manifest::from_video(&video);
        let delta = manifest.chunk_duration();
        let live = LiveConfig { head_start_chunks: head_start };
        let sim = Simulator::new(PlayerConfig {
            live: Some(live),
            startup_threshold_s: (head_start as f64 * delta).min(10.0),
            ..PlayerConfig::default()
        });
        let mut cava = Cava::paper_default();
        let session = sim.run(&mut cava, &manifest, &trace);
        prop_assert!(session.validate().is_ok());
        for r in &session.records {
            // Never requested before production.
            let avail = live.available_at(r.index, delta);
            prop_assert!(r.request_time_s >= avail - 1e-9,
                "chunk {} at {} before {avail}", r.index, r.request_time_s);
        }
        // Latencies are finite and non-negative.
        for lat in session.estimated_live_latencies(head_start) {
            prop_assert!(lat.is_finite() && lat >= -1e-9);
        }
    }

    #[test]
    fn tcp_never_speeds_up_a_single_download(
        trace in arb_trace(),
        bytes in 1u64..20_000_000,
        start in 0.0f64..200.0,
    ) {
        // For the *same* start instant, the slow-start ramp can only delay
        // completion: each RTT round delivers at most the link capacity of
        // that window. (Whole sessions are not comparable chunk-by-chunk —
        // TCP shifts later chunks into different trace regions.)
        let tcp = TcpConfig::default();
        let (ss_bytes, ss_secs) = tcp.slow_start_over_trace(bytes, &trace, start);
        prop_assert!(ss_bytes <= bytes);
        let t_tcp = ss_secs + trace.download_time(bytes - ss_bytes, start + ss_secs);
        let t_plain = trace.download_time(bytes, start);
        prop_assert!(t_tcp >= t_plain - 1e-6,
            "tcp {t_tcp} < plain {t_plain} for {bytes} bytes at {start}");
    }

    #[test]
    fn trace_transforms_preserve_invariants(trace in arb_trace(), factor in 0.1f64..5.0) {
        let scaled = trace.scaled(factor);
        prop_assert!((scaled.mean_bps() - trace.mean_bps() * factor).abs() < 1.0);
        let rotated = trace.rotated(trace.duration_s() / 3.0);
        prop_assert!((rotated.mean_bps() - trace.mean_bps()).abs() < 1e-6);
        let resampled = trace.resampled(trace.interval_s() * 2.0);
        // Bit conservation over the resampled duration.
        let d = resampled.duration_s();
        prop_assert!((resampled.bits_in_window(0.0, d) - trace.bits_in_window(0.0, d)).abs() < 10.0);
    }
}
