// Integration tests sit outside cfg(test), so opt out of the library-only
// workspace lints here explicitly.
#![allow(clippy::unwrap_used, clippy::float_cmp)]

//! The paper's headline empirical claims as (tolerant) regression tests.
//! Each test cites the section it reproduces. These use a modest trace count
//! for runtime; the full 200-trace numbers come from the `abr-bench`
//! binaries.

use cava_suite::net::lte::{lte_traces, LteConfig};
use cava_suite::prelude::*;
use cava_suite::sim::metrics::QoeMetrics;
use cava_suite::video::quality::VmafModel;

const N_TRACES: usize = 40;

fn run_all(algo: &mut dyn AbrAlgorithm, video: &Video, traces: &[Trace]) -> Vec<QoeMetrics> {
    let manifest = Manifest::from_video(video);
    let classification = Classification::from_video(video);
    let sim = Simulator::paper_default();
    let qoe = QoeConfig::lte();
    traces
        .iter()
        .map(|t| evaluate(&sim.run(algo, &manifest, t), video, &classification, &qoe))
        .collect()
}

fn mean(xs: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.collect();
    v.iter().sum::<f64>() / v.len() as f64
}

#[test]
fn section_6_3_cava_beats_robustmpc() {
    // Table 1 / Fig. 8 shape: higher Q4 quality, (much) less rebuffering,
    // lower quality change, data usage not higher.
    let video = Dataset::ed_ffmpeg_h264();
    let traces = lte_traces(N_TRACES, 42, &LteConfig::default());
    let cava = run_all(&mut Cava::paper_default(), &video, &traces);
    let mpc = run_all(&mut Mpc::robust(), &video, &traces);
    let q4_cava = mean(cava.iter().map(|m| m.q4_quality_mean));
    let q4_mpc = mean(mpc.iter().map(|m| m.q4_quality_mean));
    assert!(
        q4_cava > q4_mpc + 2.0,
        "Q4: CAVA {q4_cava} vs RobustMPC {q4_mpc}"
    );
    let reb_cava = mean(cava.iter().map(|m| m.rebuffer_s));
    let reb_mpc = mean(mpc.iter().map(|m| m.rebuffer_s));
    assert!(
        reb_cava < reb_mpc * 0.5,
        "rebuffer: CAVA {reb_cava} vs RobustMPC {reb_mpc}"
    );
    let chg_cava = mean(cava.iter().map(|m| m.avg_quality_change));
    let chg_mpc = mean(mpc.iter().map(|m| m.avg_quality_change));
    assert!(
        chg_cava < chg_mpc,
        "quality change: {chg_cava} vs {chg_mpc}"
    );
    let data_cava = mean(cava.iter().map(|m| m.data_usage_bytes as f64));
    let data_mpc = mean(mpc.iter().map(|m| m.data_usage_bytes as f64));
    assert!(
        data_cava < data_mpc * 1.05,
        "data: {data_cava} vs {data_mpc}"
    );
}

#[test]
fn section_6_3_cava_vs_panda_max_min() {
    // PANDA/CQ max-min gets quality information CAVA doesn't, yet CAVA
    // matches its Q4 quality (within noise) with far less rebuffering.
    let video = Dataset::ed_ffmpeg_h264();
    let traces = lte_traces(N_TRACES, 42, &LteConfig::default());
    let cava = run_all(&mut Cava::paper_default(), &video, &traces);
    let panda = run_all(
        &mut PandaCq::max_min(&video, VmafModel::Phone),
        &video,
        &traces,
    );
    let q4_cava = mean(cava.iter().map(|m| m.q4_quality_mean));
    let q4_panda = mean(panda.iter().map(|m| m.q4_quality_mean));
    assert!(q4_cava > q4_panda - 1.0, "Q4: {q4_cava} vs {q4_panda}");
    let reb_cava = mean(cava.iter().map(|m| m.rebuffer_s));
    let reb_panda = mean(panda.iter().map(|m| m.rebuffer_s));
    assert!(
        reb_cava < reb_panda * 0.5,
        "rebuffer: {reb_cava} vs {reb_panda}"
    );
}

#[test]
fn section_4_myopic_schemes_invert_q4_quality() {
    // §4/Fig. 4: under myopic schemes the gap between Q1-Q3 and Q4 quality
    // is larger than under CAVA.
    let video = Dataset::ed_youtube_h264();
    let traces = lte_traces(N_TRACES, 42, &LteConfig::default());
    let cava = run_all(&mut Cava::paper_default(), &video, &traces);
    for (name, sessions) in [
        ("RBA", run_all(&mut Rba::paper_default(), &video, &traces)),
        (
            "BBA-1",
            run_all(&mut Bba1::paper_default(), &video, &traces),
        ),
    ] {
        let gap_myopic = mean(
            sessions
                .iter()
                .map(|m| m.q13_quality_mean - m.q4_quality_mean),
        );
        let gap_cava = mean(cava.iter().map(|m| m.q13_quality_mean - m.q4_quality_mean));
        assert!(
            gap_myopic > gap_cava + 3.0,
            "{name}: myopic gap {gap_myopic} vs CAVA gap {gap_cava}"
        );
    }
}

#[test]
fn section_6_4_ablation_ordering() {
    // Fig. 10: P2 lifts Q4 quality over P1; P3 does not hurt it.
    let video = Dataset::ed_ffmpeg_h264();
    let traces = lte_traces(N_TRACES, 42, &LteConfig::default());
    let p1 = run_all(&mut Cava::p1(), &video, &traces);
    let p12 = run_all(&mut Cava::p12(), &video, &traces);
    let p123 = run_all(&mut Cava::p123(), &video, &traces);
    let q4 = |xs: &Vec<QoeMetrics>| mean(xs.iter().map(|m| m.q4_quality_mean));
    assert!(
        q4(&p12) > q4(&p1) + 1.0,
        "p12 {} vs p1 {}",
        q4(&p12),
        q4(&p1)
    );
    assert!(
        q4(&p123) > q4(&p1) + 1.0,
        "p123 {} vs p1 {}",
        q4(&p123),
        q4(&p1)
    );
}

#[test]
fn section_6_7_cava_insensitive_to_prediction_error() {
    // §6.7: CAVA's metrics at err = 50% stay close to err = 0; MPC degrades.
    let video = Dataset::ed_ffmpeg_h264();
    let traces = lte_traces(N_TRACES, 42, &LteConfig::default());
    let manifest = Manifest::from_video(&video);
    let classification = Classification::from_video(&video);
    let qoe = QoeConfig::lte();
    let run_err = |algo: &mut dyn AbrAlgorithm, err: f64| -> (f64, f64) {
        let sim = Simulator::new(PlayerConfig {
            bandwidth_error: if err > 0.0 { Some((err, 99)) } else { None },
            ..PlayerConfig::default()
        });
        let ms: Vec<QoeMetrics> = traces
            .iter()
            .map(|t| evaluate(&sim.run(algo, &manifest, t), &video, &classification, &qoe))
            .collect();
        (
            mean(ms.iter().map(|m| m.q4_quality_mean)),
            mean(ms.iter().map(|m| m.rebuffer_s)),
        )
    };
    let (q4_0, reb_0) = run_err(&mut Cava::paper_default(), 0.0);
    let (q4_50, reb_50) = run_err(&mut Cava::paper_default(), 0.5);
    assert!(
        (q4_0 - q4_50).abs() < 2.0,
        "CAVA Q4 shifted too much: {q4_0} vs {q4_50}"
    );
    assert!(
        reb_50 < reb_0 + 5.0,
        "CAVA rebuffering blew up: {reb_0} vs {reb_50}"
    );
    // MPC loses more quality under noise than CAVA does (the reproducible
    // part of the paper's MPC-degrades claim — see EXPERIMENTS.md for why
    // the rebuffering blow-up does not appear in this substrate).
    let (mpc_q4_0, _) = run_err(&mut Mpc::mpc(), 0.0);
    let (mpc_q4_50, _) = run_err(&mut Mpc::mpc(), 0.5);
    assert!(
        (mpc_q4_0 - mpc_q4_50) > (q4_0 - q4_50) - 0.5,
        "MPC should degrade at least as much as CAVA: MPC {mpc_q4_0}->{mpc_q4_50}, CAVA {q4_0}->{q4_50}"
    );
}

#[test]
fn section_6_8_bola_variant_ordering() {
    // Fig. 11: peak view is the most conservative (lowest mean level), avg
    // the most aggressive; seg oscillates the most among BOLA variants.
    let video = Dataset::bbb_youtube_h264();
    let traces = lte_traces(N_TRACES, 42, &LteConfig::default());
    let peak = run_all(&mut Bola::bola_e(BolaBitrateView::Peak), &video, &traces);
    let avg = run_all(&mut Bola::bola_e(BolaBitrateView::Average), &video, &traces);
    let seg = run_all(&mut Bola::bola_e(BolaBitrateView::Segment), &video, &traces);
    let lvl = |xs: &Vec<QoeMetrics>| mean(xs.iter().map(|m| m.mean_level));
    assert!(
        lvl(&peak) < lvl(&avg),
        "peak {} vs avg {}",
        lvl(&peak),
        lvl(&avg)
    );
    // CAVA beats BOLA-E (seg) on Q4 quality (Table 2 shape).
    let cava = run_all(&mut Cava::paper_default(), &video, &traces);
    let q4 = |xs: &Vec<QoeMetrics>| mean(xs.iter().map(|m| m.q4_quality_mean));
    assert!(
        q4(&cava) > q4(&seg),
        "CAVA {} vs BOLA-E seg {}",
        q4(&cava),
        q4(&seg)
    );
}

#[test]
fn section_6_5_h265_outperforms_h264() {
    // §6.5: for each video, performance under H.265 beats H.264 (lower
    // bitrate requirement) — check CAVA's overall quality and rebuffering.
    let traces = lte_traces(N_TRACES, 42, &LteConfig::default());
    let v264 = Dataset::by_name("BBB-ffmpeg-h264").expect("dataset");
    let v265 = Dataset::by_name("BBB-ffmpeg-h265").expect("dataset");
    let r264 = run_all(&mut Cava::paper_default(), &v264, &traces);
    let r265 = run_all(&mut Cava::paper_default(), &v265, &traces);
    let q = |xs: &Vec<QoeMetrics>| mean(xs.iter().map(|m| m.all_quality_mean));
    assert!(
        q(&r265) > q(&r264),
        "H.265 {} vs H.264 {}",
        q(&r265),
        q(&r264)
    );
}
