//! Offline, API-compatible shim for the subset of `serde_json` this
//! workspace uses: [`to_string`], [`to_string_pretty`], [`from_str`], and
//! [`Error`], over the shimmed `serde` [`Value`] model.
//!
//! Floats print with Rust's shortest-roundtrip formatting (the behavior the
//! real crate's `float_roundtrip` feature guarantees on parse), so
//! `to_string` → `from_str` round-trips are exact.

#![deny(missing_docs)]

use serde::{Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serialize a value to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parse a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ---- printer ---------------------------------------------------------------

fn write_value(
    v: &Value,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error(format!("cannot serialize non-finite float {f}")));
            }
            // `{:?}` is shortest-roundtrip and always keeps a decimal point
            // or exponent, matching serde_json's float formatting.
            out.push_str(&format!("{f:?}"));
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Array(items) => {
            write_seq(out, indent, depth, items.len(), '[', ']', |out, i, d| {
                write_value(&items[i], out, indent, d)
            })?;
        }
        Value::Object(fields) => {
            write_seq(out, indent, depth, fields.len(), '{', '}', |out, i, d| {
                let (k, val) = &fields[i];
                write_json_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, d)
            })?;
        }
    }
    Ok(())
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize, usize) -> Result<(), Error>,
) -> Result<(), Error> {
    out.push(open);
    if len == 0 {
        out.push(close);
        return Ok(());
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i, depth + 1)?;
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
    Ok(())
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a complete JSON document into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                if self.bytes.get(self.pos + 1) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 2) != Some(&b'u')
                                {
                                    return Err(Error("lone high surrogate".into()));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error(format!("bad codepoint {code:#x}")))?,
                            );
                        }
                        other => {
                            return Err(Error(format!(
                                "bad escape {:?}",
                                other.map(|b| b as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        // Called with pos at the `u`; consumes it plus 3 of 4 hex digits,
        // leaving the last for the caller's `pos += 1`.
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| Error("bad \\u escape".into()))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error("bad \\u escape".into()))?;
        self.pos = end - 1;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("bad number {text:?}: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error(format!("bad number {text:?}: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error(format!("bad number {text:?}: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for json in ["null", "true", "false", "42", "-17", "3.25", "\"hi\\n\""] {
            let v = parse_value(json).unwrap();
            let mut out = String::new();
            write_value(&v, &mut out, None, 0).unwrap();
            assert_eq!(out, json);
        }
    }

    #[test]
    fn float_shortest_roundtrip() {
        let v = Value::Float(0.1 + 0.2);
        let mut out = String::new();
        write_value(&v, &mut out, None, 0).unwrap();
        let back = parse_value(&out).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn nested_parse() {
        let v = parse_value(r#"{"a": [1, 2.5, {"b": null}], "c": "A"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("A"));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].get("b"), Some(&Value::Null));
    }

    #[test]
    fn pretty_prints_with_indent() {
        let v = parse_value(r#"{"a":[1,2]}"#).unwrap();
        let mut out = String::new();
        write_value(&v, &mut out, Some(2), 0).unwrap();
        assert_eq!(out, "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
    }
}
