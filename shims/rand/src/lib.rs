//! Offline, API-compatible shim for the subset of `rand` 0.8 this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen::<f64>()`,
//! and `Rng::gen_range` over float/integer ranges.
//!
//! The generator is **xoshiro256++** seeded through SplitMix64 — a
//! high-quality, fully deterministic stream. It is *not* bit-compatible
//! with the real `StdRng` (ChaCha12), so absolute values of synthetic data
//! differ from a crates.io build, but every run in this repository is
//! reproducible because all seeds are fixed.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator producing 64-bit output.
pub trait RngCore {
    /// Next raw 64 bits from the stream.
    fn next_u64(&mut self) -> u64;
}

/// An RNG that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion, matching
    /// the spirit of `rand`'s `seed_from_u64`).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG via [`Rng::gen`].
pub trait Standard {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform sampler over `[lo, hi)` / `[lo, hi]` ranges.
///
/// A single generic `SampleRange` impl per range shape (mirroring real
/// `rand`) keeps integer-literal type inference working at call sites like
/// `rng.gen_range(0..6)` used as a slice index.
pub trait SampleUniform: Sized + Copy {
    /// Draw uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo < hi || (_inclusive && lo <= hi), "empty range");
                let u = <$t as Standard>::sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_uniform_float!(f64, f32);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "empty range");
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from a half-open or inclusive range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draw a boolean that is `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ (Blackman &
    /// Vigna), seeded via SplitMix64. Not bit-compatible with `rand`'s
    /// ChaCha12-based `StdRng`, but an equally solid uniform stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut mean = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            mean += u;
        }
        mean /= 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        for _ in 0..1000 {
            let v = rng.gen_range(3..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(1..=3);
            assert!((1..=3).contains(&w));
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!(f > 0.0 && f < 1.0);
        }
    }
}
