//! Offline shim for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` for the shapes this workspace actually derives
//! on — structs with named fields and fieldless enums. Written directly
//! against `proc_macro` (no `syn`/`quote`, which are unavailable offline).
//!
//! Generated code targets the shimmed `serde` data model: `Serialize`
//! lowers into `serde::Value`, `Deserialize` rebuilds from one. Structs map
//! to objects in field order; fieldless enum variants map to their name as
//! a string (matching real serde's externally-tagged representation).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a type definition parsed down to.
enum Shape {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Enum whose variants all carry no data.
    Enum { name: String, variants: Vec<String> },
}

/// Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`) tokens.
fn skip_meta(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#[...]`: punct then bracket group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_meta(&tokens, 0);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, found {other}"),
    };
    i += 1;
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde_derive shim: generic type `{name}` is not supported")
        }
        other => panic!(
            "serde_derive shim: `{name}` must have a braced body (tuple/unit types \
             are not supported), found {other:?}"
        ),
    };
    match kind.as_str() {
        "struct" => Shape::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Shape::Enum {
            name,
            variants: parse_fieldless_variants(body),
        },
        other => panic!("serde_derive shim: cannot derive for `{other}`"),
    }
}

/// Extract field names from a named-field struct body.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_meta(&tokens, i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive shim: expected `:` after field, found {other:?}"),
        }
        // Consume the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Extract variant names from an enum body, rejecting payload variants.
fn parse_fieldless_variants(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_meta(&tokens, i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let variant = id.to_string();
        i += 1;
        if let Some(TokenTree::Group(_)) = tokens.get(i) {
            panic!(
                "serde_derive shim: variant `{variant}` carries data; only fieldless \
                 enums are supported"
            );
        }
        variants.push(variant);
        // Skip an optional `= discriminant` and the trailing comma.
        while let Some(t) = tokens.get(i) {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    variants
}

fn generate(shape: &Shape, serialize: bool) -> String {
    match shape {
        Shape::Struct { name, fields } => {
            if serialize {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"
                        )
                    })
                    .collect();
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                       fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{}])\n\
                       }}\n\
                     }}",
                    entries.join(", ")
                )
            } else {
                let builds: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(\
                               ::serde::field(v, \"{f}\", \"{name}\")?)?"
                        )
                    })
                    .collect();
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                       fn from_value(v: &::serde::Value) \
                           -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         ::std::result::Result::Ok({name} {{ {} }})\n\
                       }}\n\
                     }}",
                    builds.join(", ")
                )
            }
        }
        Shape::Enum { name, variants } => {
            if serialize {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string())"))
                    .collect();
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                       fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                       }}\n\
                     }}",
                    arms.join(", ")
                )
            } else {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| {
                        format!(
                            "::std::option::Option::Some(\"{v}\") \
                             => ::std::result::Result::Ok({name}::{v})"
                        )
                    })
                    .collect();
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                       fn from_value(v: &::serde::Value) \
                           -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v.as_str() {{\n\
                           {},\n\
                           other => ::std::result::Result::Err(::serde::DeError(\
                             format!(\"invalid {name} variant: {{other:?}}\"))),\n\
                         }}\n\
                       }}\n\
                     }}",
                    arms.join(",\n")
                )
            }
        }
    }
}

/// Derive the shimmed `serde::Serialize` for a struct or fieldless enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    generate(&shape, true).parse().expect("generated impl parses")
}

/// Derive the shimmed `serde::Deserialize` for a struct or fieldless enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    generate(&shape, false).parse().expect("generated impl parses")
}
