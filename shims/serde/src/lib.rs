//! Offline, API-compatible shim for the subset of `serde` this workspace
//! uses: `#[derive(Serialize, Deserialize)]` on plain structs and fieldless
//! enums, consumed through `serde_json`.
//!
//! Instead of serde's visitor architecture, this shim uses a concrete
//! JSON-shaped [`Value`] tree as the interchange type: `Serialize` lowers a
//! type into a [`Value`], `Deserialize` rebuilds it from one. `serde_json`
//! (also shimmed) prints and parses that tree. The derive macros live in
//! the sibling `serde_derive` shim and are re-exported here exactly like
//! the real crate does with its `derive` feature.

#![deny(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON-shaped value tree: the interchange model between `Serialize`,
/// `Deserialize`, and `serde_json`.
///
/// Object fields keep their declaration order (a `Vec`, not a map), so
/// serialized output is stable and matches the struct definition.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (serialized without a decimal point).
    Int(i64),
    /// Unsigned integer (serialized without a decimal point).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, preserving field order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64` (accepts any number variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(v) => Some(v as f64),
            Value::UInt(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if non-negative and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(v) if v >= 0 => Some(v as u64),
            Value::UInt(v) => Some(v),
            Value::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// Numeric value as `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::Float(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Look up a field of an object by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error from any displayable message.
    pub fn msg(m: impl fmt::Display) -> DeError {
        DeError(m.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Lower `self` into a [`Value`] tree.
pub trait Serialize {
    /// Convert to the interchange value.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Convert from the interchange value.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Fetch a required object field (used by derived `Deserialize` impls).
pub fn field<'a>(v: &'a Value, name: &str, ty: &str) -> Result<&'a Value, DeError> {
    v.get(name)
        .ok_or_else(|| DeError(format!("missing field `{name}` for `{ty}`")))
}

// ---- primitive impls -------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError(format!("expected bool, got {v:?}")))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_i64()
                    .ok_or_else(|| DeError(format!("expected integer, got {v:?}")))?;
                <$t>::try_from(raw).map_err(|_| DeError(format!("{raw} out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_u64()
                    .ok_or_else(|| DeError(format!("expected unsigned integer, got {v:?}")))?;
                <$t>::try_from(raw).map_err(|_| DeError(format!("{raw} out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| DeError(format!("expected number, got {v:?}")))
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError(format!("expected array, got {v:?}")))?;
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError(format!("expected {N} elements, got {}", items.len())))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array()
                    .ok_or_else(|| DeError(format!("expected array, got {v:?}")))?;
                let mut it = items.iter();
                Ok(($(
                    {
                        let _ = $idx;
                        $name::from_value(
                            it.next().ok_or_else(|| DeError("tuple too short".into()))?,
                        )?
                    },
                )+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
