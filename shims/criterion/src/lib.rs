//! Offline, API-compatible shim for the subset of `criterion` this
//! workspace's benches use: `Criterion::benchmark_group`, `sample_size`,
//! `throughput`, `bench_function`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark warms up briefly,
//! sizes an iteration batch to ≈ 50 ms, times `sample_size` batches, and
//! prints the fastest batch's mean ns/iter (the minimum is the standard
//! low-noise estimator for micro-benchmarks). No HTML reports, no
//! statistics machinery — just honest wall-clock numbers on stderr.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units for reporting per-iteration throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver, handed to every target function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark and print its result.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up & batch sizing: grow iterations until a batch costs
        // ≈ 50 ms (capped so very slow benchmarks still finish).
        let mut iters: u64 = 1;
        loop {
            bencher.iters = iters;
            f(&mut bencher);
            if bencher.elapsed >= Duration::from_millis(50) || iters >= 1 << 20 {
                break;
            }
            let grow = (Duration::from_millis(50).as_secs_f64()
                / bencher.elapsed.as_secs_f64().max(1e-9))
            .clamp(1.5, 100.0);
            iters = ((iters as f64 * grow) as u64).max(iters + 1);
        }

        // Timed samples; keep the fastest batch.
        let mut best_ns_per_iter = f64::INFINITY;
        for _ in 0..self.sample_size {
            bencher.iters = iters;
            f(&mut bencher);
            let ns = bencher.elapsed.as_nanos() as f64 / iters as f64;
            if ns < best_ns_per_iter {
                best_ns_per_iter = ns;
            }
        }

        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!(
                    "  ({:.2} Melem/s)",
                    n as f64 / best_ns_per_iter * 1e9 / 1e6
                )
            }
            Some(Throughput::Bytes(n)) => {
                format!("  ({:.2} MiB/s)", n as f64 / best_ns_per_iter * 1e9 / (1 << 20) as f64)
            }
            None => String::new(),
        };
        eprintln!(
            "bench {:<50} {:>12.1} ns/iter{rate}",
            format!("{}/{}", self.name, id),
            best_ns_per_iter,
        );
        self
    }

    /// Finish the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Per-benchmark timing handle passed to the closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f`, recording the total wall-clock cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Define a function running a list of benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` for a benchmark binary from [`criterion_group!`] outputs.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Ignore harness flags cargo passes (e.g. `--bench`).
            let _ = std::env::args();
            $($group();)+
        }
    };
}
