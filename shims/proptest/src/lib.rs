//! Offline, API-compatible shim for the subset of `proptest` this workspace
//! uses: the [`proptest!`] macro, range/tuple/`Just`/[`prop_oneof!`]
//! strategies, `collection::vec`, `prop_map`, `ProptestConfig::with_cases`,
//! and the `prop_assert*` macros.
//!
//! Semantics: each test function runs `cases` times with values drawn from
//! its strategies using a deterministic per-test RNG (seeded from the test
//! path and case index). There is **no shrinking** — on failure the panic
//! message reports the failing values via the strategy inputs' `Debug` when
//! the assertion formats them, and the deterministic seed makes reruns
//! reproduce the same failure.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic test RNG (SplitMix64-seeded xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// RNG for one case of one test, seeded from the test path and index.
    pub fn for_case(test_path: &str, case: u32) -> TestRng {
        // FNV-1a over the path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut sm = h ^ ((case as u64) << 32 | 0x9E37_79B9);
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// Test-run configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing a fixed value (cloned per case).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

/// Box a strategy for use in [`Union`] (keeps [`prop_oneof!`] simple).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                *self.start() + (*self.end() - *self.start()) * rng.unit_f64() as $t
            }
        }
    )*};
}
impl_float_range_strategy!(f64, f32);

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with random length in `size` and elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `use proptest::prelude::*;` test expects in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }` runs
/// `cases` times with fresh random values per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Assert within a property test (no shrinking; plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.0f64..10.0, n in 3usize..9) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn maps_and_unions_compose(
            v in crate::collection::vec(0u64..100, 1..20),
            tag in prop_oneof![Just("a"), Just("b")],
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 100));
            prop_assert!(tag == "a" || tag == "b");
        }

        #[test]
        fn tuples_and_prop_map(pair in (0u32..5, 0u32..5).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair < 10);
        }
    }
}
