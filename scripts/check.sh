#!/usr/bin/env sh
# Repo-wide lint gate. Run before sending a PR; CI runs the same steps.
#
#   scripts/check.sh                      # fmt + clippy + docs + abr-lint + invariants
#   scripts/check.sh --bench-tolerance 40 # loosen the perf-trajectory gate to 40%
#
# The doc step holds abr-bench to `#![deny(missing_docs)]` plus
# rustdoc's own lints (broken intra-doc links, etc.). The abr-lint step
# enforces the determinism rules R1-R10 (see CONTRIBUTING.md), writing
# the machine-readable report to results/abr-lint.json; the later
# steps re-run the simulator and controller suites with the runtime
# invariant layer armed, then gate the freshly produced BENCH_*.json
# perf documents against the committed trajectory (bench_gate; >15%
# regression in decisions/sec or p99 latency fails — override with
# --bench-tolerance, see CONTRIBUTING.md).
set -eu

cd "$(dirname "$0")/.."

BENCH_TOLERANCE=15
while [ "$#" -gt 0 ]; do
    case "$1" in
        --bench-tolerance)
            [ "$#" -ge 2 ] || { echo "--bench-tolerance needs a value" >&2; exit 2; }
            BENCH_TOLERANCE="$2"
            shift 2
            ;;
        --bench-tolerance=*)
            BENCH_TOLERANCE="${1#--bench-tolerance=}"
            shift
            ;;
        *)
            echo "unknown argument: $1 (supported: --bench-tolerance PCT)" >&2
            exit 2
            ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc -p abr-bench -p abr-serve (-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -p abr-bench -p abr-serve

echo "==> abr-lint (determinism rules R1-R10, JSON report)"
mkdir -p results
# The JSON run is the gate; the report survives for CI to upload. On
# failure, re-run in human-readable form so the violations land in the
# log with snippets and witness chains.
if ! cargo run -q -p abr-lint -- --format json > results/abr-lint.json; then
    cargo run -q -p abr-lint -- || true
    echo "abr-lint failed; report: results/abr-lint.json" >&2
    exit 1
fi

echo "==> cargo test -p abr-sim --features strict-invariants"
cargo test -q -p abr-sim --features strict-invariants

echo "==> cargo test -p cava-core --features strict-invariants"
cargo test -q -p cava-core --features strict-invariants

echo "==> abr-serve suite on the deprecated threaded backend"
# Until the threaded core is removed (deprecation window: one release,
# see CONTRIBUTING.md) the whole abr-serve suite must stay green on it.
# Tests that exist to pin reactor-only behaviour set the backend
# explicitly and ignore this override.
ABR_SERVE_BACKEND=threaded cargo test -q -p abr-serve

echo "==> allocation discipline (counted-alloc: allocator + hot-path tests)"
# The decision hot path must stay allocation-free (see ARCHITECTURE.md
# "Hot-path memory discipline"). The counted-alloc feature builds the
# counting global allocator into these test binaries; they prove zero
# steady-state allocations for SessionStore::decide, for decide round
# trips over a real socket on both backends, and for the simulator's
# per-step path. The BENCH_alloc.json exact gate below holds the same
# numbers against the committed baseline.
cargo test -q -p counted-alloc
cargo test -q -p abr-serve --features counted-alloc --test alloc_discipline
cargo test -q -p abr-sim --features counted-alloc --test alloc_discipline

echo "==> serve/loadgen loopback soak (200 held sessions, parity on)"
cargo build -q --release -p cava-cli
PORT_FILE="$(mktemp)"
rm -f "$PORT_FILE"
./target/release/cava serve --addr 127.0.0.1:0 --threads 8 --port-file "$PORT_FILE" &
SERVE_PID=$!
tries=0
while [ ! -s "$PORT_FILE" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 200 ]; then
        echo "serve never wrote its address" >&2
        kill "$SERVE_PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.05
done
# loadgen exits nonzero on any session error or parity mismatch (set -e);
# --stop-server makes the background serve process exit on its own.
./target/release/cava loadgen "$(cat "$PORT_FILE")" \
    --sessions 200 --connections 8 --schemes cava,bola,rba \
    --hold true --parity true --stop-server true
wait "$SERVE_PID"
rm -f "$PORT_FILE"

echo "==> chaos smoke (deadlines armed, faults injected, parity on, recorded)"
REPLAY_LOG="results/check_chaos.replay"
mkdir -p results
rm -f "$REPLAY_LOG"
PORT_FILE="$(mktemp)"
rm -f "$PORT_FILE"
./target/release/cava serve --addr 127.0.0.1:0 --threads 4 \
    --read-deadline-ms 3000 --write-deadline-ms 3000 --poll-ms 10 \
    --record "$REPLAY_LOG" \
    --port-file "$PORT_FILE" &
SERVE_PID=$!
tries=0
while [ ! -s "$PORT_FILE" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 200 ]; then
        echo "serve never wrote its address" >&2
        kill "$SERVE_PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.05
done
# Deterministic stalls, truncated writes, and connection resets; the
# fleet must recover (retry + reconnect + resume) with parity intact.
./target/release/cava loadgen "$(cat "$PORT_FILE")" \
    --sessions 36 --connections 4 --schemes cava,bola,rba \
    --hold true --parity true \
    --faults true --fault-period 5 --fault-stall-ms 2 \
    --stop-server true
wait "$SERVE_PID"
rm -f "$PORT_FILE"

echo "==> record -> replay -> diff smoke (docs/REPLAY.md)"
# Replaying the recorded chaos run re-executes every decision through
# fresh algorithm instances; any divergence exits nonzero. Diffing the
# log against itself proves the diff path reads the artifact cleanly.
./target/release/cava replay "$REPLAY_LOG"
./target/release/cava replay "$REPLAY_LOG" --seek 1000
./target/release/cava replay "$REPLAY_LOG" --diff "$REPLAY_LOG"

echo "==> cross-backend equivalence (threaded vs reactor, same CAVR log)"
# The deprecated thread-per-connection core and the reactor must be
# behaviourally indistinguishable: a same-seed serial fleet recorded on
# each backend yields byte-identical event logs, and the threaded log
# replays through in-process re-execution with zero divergence. The two
# logs stay under results/ so CI can upload them as artifacts when the
# diff pins a divergent event.
OLD_LOG="results/check_backend_threaded.replay"
NEW_LOG="results/check_backend_reactor.replay"
rm -f "$OLD_LOG" "$NEW_LOG"
for BACKEND in threaded reactor; do
    PORT_FILE="$(mktemp)"
    rm -f "$PORT_FILE"
    ./target/release/cava serve --addr 127.0.0.1:0 --backend "$BACKEND" \
        --threads 4 --record "results/check_backend_$BACKEND.replay" \
        --port-file "$PORT_FILE" &
    SERVE_PID=$!
    tries=0
    while [ ! -s "$PORT_FILE" ]; do
        tries=$((tries + 1))
        if [ "$tries" -gt 200 ]; then
            echo "serve ($BACKEND) never wrote its address" >&2
            kill "$SERVE_PID" 2>/dev/null || true
            exit 1
        fi
        sleep 0.05
    done
    # One connection keeps the event order deterministic across backends.
    ./target/release/cava loadgen "$(cat "$PORT_FILE")" \
        --sessions 12 --connections 1 --schemes cava,bola,rba \
        --hold true --parity true --stop-server true > /dev/null
    wait "$SERVE_PID"
    rm -f "$PORT_FILE"
done
./target/release/cava replay "$OLD_LOG"
./target/release/cava replay "$OLD_LOG" --diff "$NEW_LOG"

echo "==> README throughput number matches committed BENCH_serve.json"
# The README quotes the headline decisions/s; a re-baseline that forgets
# the prose fails here. Compare on the integer part of the top-level
# (scale-phase) field — the nested smoke figure is indented deeper.
BENCH_DPS="$(sed -n 's/^  "decisions_per_s": \([0-9]*\).*/\1/p' BENCH_serve.json | head -n 1)"
SMOKE_DPS="$(sed -n 's/^    "decisions_per_s": \([0-9]*\).*/\1/p' BENCH_serve.json | head -n 1)"
[ -n "$BENCH_DPS" ] || { echo "no decisions_per_s in BENCH_serve.json" >&2; exit 1; }
if ! tr -d ',' < README.md | grep -q "~${BENCH_DPS} decisions/s"; then
    echo "README.md does not quote ~${BENCH_DPS} decisions/s from BENCH_serve.json" >&2
    exit 1
fi
if [ -n "$SMOKE_DPS" ] && ! tr -d ',' < README.md | grep -q "~${SMOKE_DPS} decisions/s"; then
    echo "README.md does not quote the smoke-phase ~${SMOKE_DPS} decisions/s" >&2
    exit 1
fi

echo "==> population determinism smoke (1 vs 8 threads, byte-identical)"
# The abr-pop sweep derives every viewer from (seed, index) alone, so the
# per-cohort CSV must not depend on the worker count. cmp is the gate.
POP_DIR="$(mktemp -d)"
./target/release/cava population --sessions 2000 --threads 1 \
    --csv "$POP_DIR/pop-t1.csv" > /dev/null
./target/release/cava population --sessions 2000 --threads 8 \
    --csv "$POP_DIR/pop-t8.csv" > /dev/null
cmp "$POP_DIR/pop-t1.csv" "$POP_DIR/pop-t8.csv"
rm -rf "$POP_DIR"

echo "==> bench perf gate (fresh BENCH_*.json vs committed, tolerance ${BENCH_TOLERANCE}%)"
# Re-run the perf-tracked experiments into a scratch directory and diff
# the fresh documents against the committed trajectory with bench_gate
# (>BENCH_TOLERANCE% regression in decisions/sec or p99 latency fails).
# Documents not committed yet (first revision on a branch) are skipped.
cargo build -q --release -p abr-bench --bin exp_serve_soak --bin exp_serve_chaos \
    --bin exp_population --bin bench_gate
# exp_alloc_gate needs its own invocation: only this binary installs the
# counting global allocator, and the measuring implementation only builds
# with the counted-alloc feature.
cargo build -q --release -p abr-bench --features counted-alloc --bin exp_alloc_gate
REPO_ROOT="$(pwd)"
GATE_BASE="$(mktemp -d)"
GATE_FRESH="$(mktemp -d)"
for doc in BENCH_serve.json BENCH_serve_chaos.json BENCH_population.json \
    BENCH_alloc.json; do
    if ! git show "HEAD:$doc" > "$GATE_BASE/$doc" 2>/dev/null; then
        echo "  $doc not in HEAD yet - gate skipped for it"
        rm -f "$GATE_BASE/$doc"
    fi
done
(cd "$GATE_FRESH" && RESULTS_DIR="$GATE_FRESH/results" \
    "$REPO_ROOT/target/release/exp_serve_soak" > /dev/null)
(cd "$GATE_FRESH" && RESULTS_DIR="$GATE_FRESH/results" \
    "$REPO_ROOT/target/release/exp_serve_chaos" > /dev/null)
(cd "$GATE_FRESH" && RESULTS_DIR="$GATE_FRESH/results" POP_SCALE=20000 \
    "$REPO_ROOT/target/release/exp_population" > /dev/null)
(cd "$GATE_FRESH" && RESULTS_DIR="$GATE_FRESH/results" \
    "$REPO_ROOT/target/release/exp_alloc_gate" > /dev/null)
# Keep the fresh alloc document under results/ so CI can upload it as an
# artifact even when a gate fails (the workflow step uses `if: always()`).
cp "$GATE_FRESH/BENCH_alloc.json" results/BENCH_alloc_fresh.json
for doc in BENCH_serve.json BENCH_serve_chaos.json BENCH_population.json; do
    if [ -f "$GATE_BASE/$doc" ] && [ -f "$GATE_FRESH/$doc" ]; then
        ./target/release/bench_gate "$GATE_BASE/$doc" "$GATE_FRESH/$doc" \
            --tolerance "$BENCH_TOLERANCE"
    fi
done
# The alloc document is held to 0% — allocs_per_decision/bytes_per_decision
# are exact-gated inside bench_gate (any increase fails), and the committed
# baseline is all zeros, so this gate never loosens with --bench-tolerance.
if [ -f "$GATE_BASE/BENCH_alloc.json" ]; then
    ./target/release/bench_gate "$GATE_BASE/BENCH_alloc.json" \
        "$GATE_FRESH/BENCH_alloc.json" --tolerance 0
fi
rm -rf "$GATE_BASE" "$GATE_FRESH"

echo "all checks passed"
