#!/usr/bin/env sh
# Repo-wide lint gate. Run before sending a PR; CI runs the same steps.
#
#   scripts/check.sh          # fmt + clippy + docs
#
# The doc step holds abr-bench to `#![deny(missing_docs)]` plus
# rustdoc's own lints (broken intra-doc links, etc.).
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc -p abr-bench (-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -p abr-bench

echo "all checks passed"
