#!/usr/bin/env sh
# Repo-wide lint gate. Run before sending a PR; CI runs the same steps.
#
#   scripts/check.sh          # fmt + clippy + docs + abr-lint + invariants
#
# The doc step holds abr-bench to `#![deny(missing_docs)]` plus
# rustdoc's own lints (broken intra-doc links, etc.). The abr-lint step
# enforces the determinism rules R1-R6 (see CONTRIBUTING.md); the final
# steps re-run the simulator and controller suites with the runtime
# invariant layer armed.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc -p abr-bench (-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -p abr-bench

echo "==> abr-lint (determinism rules R1-R6)"
cargo run -q -p abr-lint --

echo "==> cargo test -p abr-sim --features strict-invariants"
cargo test -q -p abr-sim --features strict-invariants

echo "==> cargo test -p cava-core --features strict-invariants"
cargo test -q -p cava-core --features strict-invariants

echo "all checks passed"
