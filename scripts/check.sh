#!/usr/bin/env sh
# Repo-wide lint gate. Run before sending a PR; CI runs the same steps.
#
#   scripts/check.sh          # fmt + clippy + docs + abr-lint + invariants
#
# The doc step holds abr-bench to `#![deny(missing_docs)]` plus
# rustdoc's own lints (broken intra-doc links, etc.). The abr-lint step
# enforces the determinism rules R1-R10 (see CONTRIBUTING.md), writing
# the machine-readable report to results/abr-lint.json; the final
# steps re-run the simulator and controller suites with the runtime
# invariant layer armed.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc -p abr-bench -p abr-serve (-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -p abr-bench -p abr-serve

echo "==> abr-lint (determinism rules R1-R10, JSON report)"
mkdir -p results
# The JSON run is the gate; the report survives for CI to upload. On
# failure, re-run in human-readable form so the violations land in the
# log with snippets and witness chains.
if ! cargo run -q -p abr-lint -- --format json > results/abr-lint.json; then
    cargo run -q -p abr-lint -- || true
    echo "abr-lint failed; report: results/abr-lint.json" >&2
    exit 1
fi

echo "==> cargo test -p abr-sim --features strict-invariants"
cargo test -q -p abr-sim --features strict-invariants

echo "==> cargo test -p cava-core --features strict-invariants"
cargo test -q -p cava-core --features strict-invariants

echo "==> serve/loadgen loopback soak (200 held sessions, parity on)"
cargo build -q --release -p cava-cli
PORT_FILE="$(mktemp)"
rm -f "$PORT_FILE"
./target/release/cava serve --addr 127.0.0.1:0 --threads 8 --port-file "$PORT_FILE" &
SERVE_PID=$!
tries=0
while [ ! -s "$PORT_FILE" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 200 ]; then
        echo "serve never wrote its address" >&2
        kill "$SERVE_PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.05
done
# loadgen exits nonzero on any session error or parity mismatch (set -e);
# --stop-server makes the background serve process exit on its own.
./target/release/cava loadgen "$(cat "$PORT_FILE")" \
    --sessions 200 --connections 8 --schemes cava,bola,rba \
    --hold true --parity true --stop-server true
wait "$SERVE_PID"
rm -f "$PORT_FILE"

echo "==> chaos smoke (deadlines armed, faults injected, parity on, recorded)"
REPLAY_LOG="results/check_chaos.replay"
mkdir -p results
rm -f "$REPLAY_LOG"
PORT_FILE="$(mktemp)"
rm -f "$PORT_FILE"
./target/release/cava serve --addr 127.0.0.1:0 --threads 4 \
    --read-deadline-ms 3000 --write-deadline-ms 3000 --poll-ms 10 \
    --record "$REPLAY_LOG" \
    --port-file "$PORT_FILE" &
SERVE_PID=$!
tries=0
while [ ! -s "$PORT_FILE" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 200 ]; then
        echo "serve never wrote its address" >&2
        kill "$SERVE_PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.05
done
# Deterministic stalls, truncated writes, and connection resets; the
# fleet must recover (retry + reconnect + resume) with parity intact.
./target/release/cava loadgen "$(cat "$PORT_FILE")" \
    --sessions 36 --connections 4 --schemes cava,bola,rba \
    --hold true --parity true \
    --faults true --fault-period 5 --fault-stall-ms 2 \
    --stop-server true
wait "$SERVE_PID"
rm -f "$PORT_FILE"

echo "==> record -> replay -> diff smoke (docs/REPLAY.md)"
# Replaying the recorded chaos run re-executes every decision through
# fresh algorithm instances; any divergence exits nonzero. Diffing the
# log against itself proves the diff path reads the artifact cleanly.
./target/release/cava replay "$REPLAY_LOG"
./target/release/cava replay "$REPLAY_LOG" --seek 1000
./target/release/cava replay "$REPLAY_LOG" --diff "$REPLAY_LOG"

echo "all checks passed"
